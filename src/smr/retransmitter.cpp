#include "smr/retransmitter.hpp"

#include <chrono>

namespace mcsmr::smr {

Retransmitter::Retransmitter(const Config& config, PartitionIo replica_io)
    : config_(config), replica_io_(replica_io) {}

Retransmitter::~Retransmitter() { stop(); }

void Retransmitter::start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = metrics::NamedThread(config_.thread_name_prefix + "Retransmitter", [this] { run(); });
}

void Retransmitter::stop() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  started_ = false;
}

void Retransmitter::schedule(std::uint64_t key, paxos::Message message) {
  auto entry = std::make_shared<Entry>();
  entry->message = std::move(message);
  entry->key = key;

  // Replacing an armed key (e.g. re-proposal after view change) cancels
  // the stale entry first.
  if (auto it = by_key_.find(key); it != by_key_.end()) {
    it->second->cancelled.store(true, std::memory_order_relaxed);
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
  by_key_[key] = entry;
  armed_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> guard(mu_);
    heap_.push(Pending{mono_ns() + config_.retransmit_timeout_ns, std::move(entry)});
  }
  cv_.notify_one();
}

void Retransmitter::cancel(std::uint64_t key) {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return;
  // The paper's lock-free cancel: set the flag, let the thread find out
  // when the deadline fires. No lock, no context switch.
  it->second->cancelled.store(true, std::memory_order_relaxed);
  by_key_.erase(it);
  armed_.fetch_sub(1, std::memory_order_relaxed);
}

void Retransmitter::cancel_all() {
  for (auto& [key, entry] : by_key_) {
    entry->cancelled.store(true, std::memory_order_relaxed);
  }
  armed_.fetch_sub(by_key_.size(), std::memory_order_relaxed);
  by_key_.clear();
}

void Retransmitter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (heap_.empty()) {
      metrics::WaitingTimer timer;
      cv_.wait(lock, [this] { return stopping_ || !heap_.empty(); });
      continue;
    }
    const std::uint64_t now = mono_ns();
    if (heap_.top().deadline_ns > now) {
      metrics::WaitingTimer timer;
      cv_.wait_for(lock, std::chrono::nanoseconds(heap_.top().deadline_ns - now));
      continue;
    }
    Pending item = heap_.top();
    heap_.pop();
    if (item.entry->cancelled.load(std::memory_order_relaxed)) continue;  // lazy drop

    lock.unlock();
    replica_io_.broadcast(item.entry->message);
    resends_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();

    item.deadline_ns = mono_ns() + config_.retransmit_timeout_ns;
    heap_.push(std::move(item));
  }
}

}  // namespace mcsmr::smr
