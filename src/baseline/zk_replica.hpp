// Baseline: a ZooKeeper-3.3.3-style replica architecture.
//
// This is the comparison system of the paper's Figs 1, 12, 13, 14 — the
// same replication protocol, but structured the way Zab's leader process
// is: a chain of single-purpose pipeline threads coordinating through one
// coarse *global* lock, with no request batching (every client request is
// its own proposal). The paper's profiling attributes ZooKeeper's collapse
// beyond 4 cores to exactly these structural properties:
//
//   * PrepThread ("ProcessThread" in Fig 1b) — takes client requests one
//     at a time and turns each into a proposal under the global lock;
//   * SyncThread — the transaction-log append stage; even on a ramdisk it
//     costs per-request CPU (serialization + checksum) and serializes all
//     proposals;
//   * LearnerHandler-p / Sender-p — per-peer reader/writer threads that
//     process every protocol message under the global lock;
//   * CommitProcessor — applies committed requests while *holding the
//     global lock*, making it the single-thread bottleneck whose 100%
//     busy+blocked profile dominates Fig 1b/14b;
//   * a coarse single-stripe reply cache (the paper's "conventional hash
//     table based on coarse-grained locking").
//
// Correctness still comes from the same paxos::Engine; only the threading
// architecture differs — which is the point of the comparison.
#pragma once

#include <memory>

#include "metrics/thread_stats.hpp"
#include "paxos/engine.hpp"
#include "smr/client_io.hpp"
#include "smr/events.hpp"
#include "smr/replica_io.hpp"
#include "smr/reply_cache.hpp"
#include "smr/retransmitter.hpp"
#include "smr/service.hpp"
#include "smr/shared_state.hpp"
#include "smr/transport.hpp"

namespace mcsmr::baseline {

using smr::ClientIo;
using smr::ReplyCache;
using smr::Service;

struct ZkParams {
  /// Simulated per-request transaction-log cost (serialization + CRC over
  /// the payload; ZooKeeper pays this even with /dev/shm logs).
  std::uint64_t sync_cost_ns = 4'000;
  /// Extra CPU burned per commit while holding the global lock (ZK's
  /// commit path: building the tree txn, watches, serializing the reply).
  std::uint64_t commit_cost_ns = 4'000;
  /// Per-proposal preparation cost under the global lock.
  std::uint64_t prep_cost_ns = 3'000;
};

class ZkReplica {
 public:
  /// SimNet-backed baseline replica (benches and tests).
  static std::unique_ptr<ZkReplica> create_sim(const Config& config, ReplicaId self,
                                               net::SimNetwork& net,
                                               const std::vector<net::NodeId>& replica_nodes,
                                               std::unique_ptr<Service> service,
                                               ZkParams params = {});

  ~ZkReplica();
  ZkReplica(const ZkReplica&) = delete;
  ZkReplica& operator=(const ZkReplica&) = delete;

  void start();
  void stop();

  ReplicaId id() const { return self_; }
  bool is_leader() const { return shared_.is_leader.load(std::memory_order_relaxed); }
  std::uint64_t executed_requests() const {
    return shared_.executed_requests.load(std::memory_order_relaxed);
  }
  smr::SharedState& shared() { return shared_; }

 private:
  ZkReplica(const Config& config, ReplicaId self,
            std::unique_ptr<smr::PeerTransport> transport, std::unique_ptr<Service> service,
            ZkParams params);

  void prep_loop();            // "ProcessThread"
  void sync_loop();            // "SyncThread"
  void learner_loop(ReplicaId peer);  // "LearnerHandler-p"
  void commit_loop();          // "CommitProcessor"
  void apply_effects(std::vector<paxos::Effect>& effects);  // global lock held

  /// Burn approximately `ns` of CPU (models ZK's per-stage work).
  static void burn(std::uint64_t ns);

  Config config_;
  ReplicaId self_;
  ZkParams params_;
  smr::SharedState shared_;

  smr::RequestQueue request_queue_;
  BoundedBlockingQueue<Bytes> sync_queue_;       // proposals awaiting "log append"
  BoundedBlockingQueue<smr::Decision> commit_queue_;

  std::unique_ptr<smr::PeerTransport> transport_;
  std::unique_ptr<Service> service_;
  ReplyCache reply_cache_;  // single stripe: coarse-locked

  // The defining feature: one lock around all protocol + commit state.
  metrics::InstrumentedMutex global_lock_;
  paxos::Engine engine_;

  // Required by the reused ReplicaIo but never consumed: the baseline's
  // LearnerHandler threads receive from the transport directly.
  smr::DispatcherQueue unused_dispatcher_{1, "unused"};

  smr::ReplicaIo replica_io_;
  smr::Retransmitter retransmitter_;
  std::unique_ptr<ClientIo> client_io_;

  std::vector<metrics::NamedThread> threads_;
  std::atomic<bool> running_{false};
  bool started_ = false;
};

}  // namespace mcsmr::baseline
