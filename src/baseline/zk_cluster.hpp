// Convenience wiring for a SimNet cluster of baseline (ZooKeeper-like)
// replicas — used by tests and the Fig 1/12/13/14 benches.
#pragma once

#include <memory>
#include <vector>

#include "baseline/zk_replica.hpp"
#include "common/clock.hpp"
#include "net/simnet.hpp"

namespace mcsmr::baseline {

class ZkCluster {
 public:
  using ServiceFactory = std::function<std::unique_ptr<Service>()>;

  ZkCluster(Config config, net::SimNetwork& net, ZkParams params = {},
            ServiceFactory factory = [] { return std::make_unique<smr::NullService>(); })
      : config_(config) {
    for (int id = 0; id < config_.n; ++id) {
      nodes_.push_back(net.add_node("zk-replica-" + std::to_string(id)));
    }
    for (int id = 0; id < config_.n; ++id) {
      replicas_.push_back(ZkReplica::create_sim(config_, static_cast<ReplicaId>(id), net,
                                                nodes_, factory(), params));
    }
  }

  void start() {
    for (auto& replica : replicas_) replica->start();
  }
  void stop() {
    for (auto& replica : replicas_) replica->stop();
  }

  std::optional<ReplicaId> wait_for_leader(std::uint64_t timeout_ns = 5 * kSeconds) {
    const std::uint64_t deadline = mono_ns() + timeout_ns;
    while (mono_ns() < deadline) {
      for (auto& replica : replicas_) {
        if (replica->is_leader()) return replica->id();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return std::nullopt;
  }

  const std::vector<net::NodeId>& nodes() const { return nodes_; }
  ZkReplica& replica(ReplicaId id) { return *replicas_[id]; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<net::NodeId> nodes_;
  std::vector<std::unique_ptr<ZkReplica>> replicas_;
};

}  // namespace mcsmr::baseline
