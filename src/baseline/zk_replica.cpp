#include "baseline/zk_replica.hpp"

#include "common/busy_work.hpp"
#include "common/logging.hpp"
#include "smr/sim_client_io.hpp"

namespace mcsmr::baseline {

namespace {
// A private dispatcher the reused ReplicaIo requires but the baseline
// never reads (it spawns no receiver threads there).
Config baseline_config(Config config) {
  config.window_size = 4096;       // ZK pipelines per-request proposals freely
  config.reply_cache_stripes = 1;  // the coarse-locked table of §V-D
  return config;
}
}  // namespace

ZkReplica::ZkReplica(const Config& config, ReplicaId self,
                     std::unique_ptr<smr::PeerTransport> transport,
                     std::unique_ptr<Service> service, ZkParams params)
    : config_(baseline_config(config)), self_(self), params_(params), shared_(config.n),
      request_queue_(config.request_queue_cap, "RequestQueue"),
      sync_queue_(config.request_queue_cap, "SyncQueue"),
      commit_queue_(config.decision_queue_cap, "CommitQueue"),
      transport_(std::move(transport)), service_(std::move(service)),
      reply_cache_(/*stripes=*/1, config.admitted_ttl_ns), engine_(config_, self),
      replica_io_(config_, self, *transport_, unused_dispatcher_, shared_,
                  smr::ReplicaIo::ThreadNames{"LearnerHandlerRcv-", "Sender-"}),
      retransmitter_(config_, replica_io_) {}

std::unique_ptr<ZkReplica> ZkReplica::create_sim(const Config& config, ReplicaId self,
                                                 net::SimNetwork& net,
                                                 const std::vector<net::NodeId>& replica_nodes,
                                                 std::unique_ptr<Service> service,
                                                 ZkParams params) {
  auto transport = std::make_unique<smr::SimPeerTransport>(net, replica_nodes, self);
  auto replica = std::unique_ptr<ZkReplica>(
      new ZkReplica(config, self, std::move(transport), std::move(service), params));
  replica->client_io_ = std::make_unique<smr::SimClientIo>(
      replica->config_, net, replica_nodes[self], replica->request_queue_,
      replica->reply_cache_, replica->shared_);
  return replica;
}

ZkReplica::~ZkReplica() { stop(); }

void ZkReplica::burn(std::uint64_t ns) { burn_cpu_ns(ns); }

void ZkReplica::start() {
  if (started_) return;
  started_ = true;
  running_.store(true);

  replica_io_.start(/*spawn_receivers=*/false);
  retransmitter_.start();

  // Run Phase 1 for view 0 if we lead it.
  {
    std::lock_guard<metrics::InstrumentedMutex> guard(global_lock_);
    std::vector<paxos::Effect> effects;
    engine_.start(effects);
    apply_effects(effects);
  }

  threads_.emplace_back(config_.thread_name_prefix + "ProcessThread", [this] { prep_loop(); });
  threads_.emplace_back(config_.thread_name_prefix + "SyncThread", [this] { sync_loop(); });
  threads_.emplace_back(config_.thread_name_prefix + "CommitProcessor", [this] { commit_loop(); });
  for (int peer = 0; peer < config_.n; ++peer) {
    if (static_cast<ReplicaId>(peer) == self_) continue;
    const auto id = static_cast<ReplicaId>(peer);
    threads_.emplace_back(config_.thread_name_prefix + "LearnerHandler-" + std::to_string(peer),
                          [this, id] { learner_loop(id); });
  }
  client_io_->start();
}

void ZkReplica::stop() {
  if (!started_) return;
  started_ = false;
  running_.store(false);
  client_io_->stop();
  request_queue_.close();
  sync_queue_.close();
  commit_queue_.close();
  retransmitter_.stop();
  replica_io_.stop();  // transport shutdown wakes learner threads
  threads_.clear();    // joins
}

void ZkReplica::apply_effects(std::vector<paxos::Effect>& effects) {
  for (auto& effect : effects) {
    std::visit(
        [&](auto& e) {
          using T = std::decay_t<decltype(e)>;
          if constexpr (std::is_same_v<T, paxos::SendTo>) {
            replica_io_.send(e.to, e.message);
          } else if constexpr (std::is_same_v<T, paxos::BroadcastMsg>) {
            replica_io_.broadcast(e.message);
          } else if constexpr (std::is_same_v<T, paxos::Deliver>) {
            shared_.decided_instances.fetch_add(1, std::memory_order_relaxed);
            commit_queue_.push(smr::Decision{e.instance, std::move(e.value)});
          } else if constexpr (std::is_same_v<T, paxos::ScheduleRetransmit>) {
            retransmitter_.schedule(e.key, std::move(e.message));
          } else if constexpr (std::is_same_v<T, paxos::CancelRetransmit>) {
            retransmitter_.cancel(e.key);
          } else if constexpr (std::is_same_v<T, paxos::CancelAllRetransmits>) {
            retransmitter_.cancel_all();
          } else if constexpr (std::is_same_v<T, paxos::ViewChanged>) {
            shared_.view.store(e.view, std::memory_order_relaxed);
            shared_.is_leader.store(e.is_leader, std::memory_order_relaxed);
          } else if constexpr (std::is_same_v<T, paxos::InstallSnapshot>) {
            // Baseline does not implement state transfer.
          }
        },
        effect);
  }
  effects.clear();
}

void ZkReplica::prep_loop() {
  while (auto request = request_queue_.pop()) {
    // Per-request preparation under the global lock (zxid assignment,
    // session checks — the ZK PrepRequestProcessor / proposal path).
    Bytes proposal;
    {
      std::lock_guard<metrics::InstrumentedMutex> guard(global_lock_);
      burn(params_.prep_cost_ns);
      proposal = paxos::encode_batch({*request});  // no batching: one request
    }
    if (!sync_queue_.push(std::move(proposal))) return;
  }
}

void ZkReplica::sync_loop() {
  while (auto proposal = sync_queue_.pop()) {
    // Transaction-log append: checksum the payload (real work) plus the
    // configured per-append overhead — even a ramdisk log pays this.
    std::uint64_t crc = 0;
    for (std::uint8_t byte : *proposal) crc = crc * 131 + byte;
    (void)crc;
    burn(params_.sync_cost_ns);

    // Propose under the global lock.
    std::lock_guard<metrics::InstrumentedMutex> guard(global_lock_);
    std::vector<paxos::Effect> effects;
    if (!engine_.on_batch(std::move(*proposal), effects)) {
      // Not leader (yet): request is lost; clients retry elsewhere.
      shared_.dropped_batches.fetch_add(1, std::memory_order_relaxed);
    }
    apply_effects(effects);
  }
}

void ZkReplica::learner_loop(ReplicaId peer) {
  while (auto frame = transport_->recv_from(peer)) {
    shared_.last_recv_ns[peer].store(mono_ns(), std::memory_order_relaxed);
    paxos::WireMessage wire;
    try {
      wire = paxos::decode_message(*frame);
    } catch (const DecodeError& error) {
      LOG_WARN << "baseline: malformed frame from " << peer << ": " << error.what();
      continue;
    }
    // Followers pay the log-append cost for every proposal they accept.
    if (std::holds_alternative<paxos::Propose>(wire.message)) {
      burn(params_.sync_cost_ns);
    }
    std::lock_guard<metrics::InstrumentedMutex> guard(global_lock_);
    std::vector<paxos::Effect> effects;
    engine_.on_message(peer, wire.message, effects);
    apply_effects(effects);
  }
}

void ZkReplica::commit_loop() {
  while (auto decision = commit_queue_.pop()) {
    std::vector<paxos::Request> requests;
    try {
      requests = paxos::decode_batch(decision->batch);
    } catch (const DecodeError&) {
      continue;
    }
    for (auto& request : requests) {
      // The commit path holds the global lock while applying — the
      // CommitProcessor bottleneck of Fig 1b / Fig 14.
      Bytes reply;
      {
        std::lock_guard<metrics::InstrumentedMutex> guard(global_lock_);
        if (reply_cache_.executed(request.client_id, request.seq)) continue;
        reply = service_->execute(request.payload);
        reply_cache_.update(request.client_id, request.seq, reply);
        burn(params_.commit_cost_ns);
        shared_.executed_requests.fetch_add(1, std::memory_order_relaxed);
      }
      client_io_->send_reply(request.client_id, request.seq, smr::ReplyStatus::kOk, reply);
    }
  }
}

}  // namespace mcsmr::baseline
