#include "paxos/engine.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace mcsmr::paxos {

Engine::Engine(const Config& config, ReplicaId self, LogStorage* storage)
    : config_(config), self_(self),
      grant_deadline_(static_cast<std::size_t>(config.n), 0),
      rng_(0x5EEDull * (self + 1)) {
  if (storage == nullptr) {
    owned_storage_ = std::make_unique<MemoryStorage>();
    storage_ = owned_storage_.get();
  } else {
    storage_ = storage;
  }
}

void Engine::start(std::vector<Effect>& out) {
  restore_from_storage(out);
  if (config_.leader_of_view(0) == self_ && !grant_blocks(self_)) {
    become_candidate(out);
  }
}

// ---------------------------------------------------------------------------
// Durability + recovery
// ---------------------------------------------------------------------------

void Engine::persist_promise() {
  if (!storage_->persistent()) return;
  storage_->append(DurableRecord::promise(view_));
}

void Engine::persist_accept(InstanceId instance, ViewId view, const Bytes& value) {
  if (!storage_->persistent()) return;
  storage_->append(DurableRecord::accept(view, instance, Bytes(value)));
}

void Engine::persist_decide(InstanceId instance, const Bytes& value) {
  if (!storage_->persistent()) return;
  storage_->append(DurableRecord::decide(instance, Bytes(value)));
}

void Engine::persist_checkpoint(const SnapshotData& snapshot) {
  if (!storage_->persistent()) return;
  std::vector<DurableRecord> records;
  records.push_back(DurableRecord::promise(view_));
  records.push_back(DurableRecord::snapshot(snapshot.next_instance, Bytes(*snapshot.state),
                                            Bytes(snapshot.reply_cache)));
  // Entries above the cut survive the rewrite: their acceptances (and any
  // decisions not yet covered by the snapshot) are still protocol state.
  for (InstanceId id = log_.base(); id < log_.end(); ++id) {
    const LogEntry* e = log_.find(id);
    if (e == nullptr || !e->has_value()) continue;
    records.push_back(DurableRecord::accept(e->accepted_view, id, Bytes(e->value)));
    if (e->decided()) records.push_back(DurableRecord::decide(id, Bytes(e->value)));
  }
  storage_->checkpoint(records);
}

void Engine::restore_from_storage(std::vector<Effect>& out) {
  const RecoveredState& recovered = storage_->recovered();
  if (recovered.empty()) return;

  if (lease_enabled()) {
    // The crash lost whatever grant this replica had extended. Refuse every
    // candidate (ourselves included) for a full lease window so a live
    // leader's lease cannot be broken by our amnesia.
    lease_granted_to_ = kGrantNobody;
    lease_granted_until_ns_ = local_now_ns() + config_.lease_duration_ns;
  }

  if (recovered.snapshot) {
    const DurableRecord& snapshot = *recovered.snapshot;
    log_.truncate_before(snapshot.instance);
    next_deliver_ = snapshot.instance;
    out.push_back(InstallSnapshot{snapshot.instance, snapshot.value, snapshot.reply_cache});
  }
  for (const auto& [id, entry] : recovered.entries) {
    if (id < log_.base()) continue;
    LogEntry& e = log_.entry(id);
    e.state = InstanceState::kKnown;
    e.accepted_view = entry.accepted_view;
    e.value = entry.value;
    if (entry.decided) log_.decide(id, Bytes(entry.value));
  }
  if (recovered.promised_view > view_) {
    view_ = recovered.promised_view;
    role_ = Role::kFollower;
    out.push_back(ViewChanged{view_, false});
  }
  next_instance_ = std::max(next_instance_, log_.end());
  // Re-emit the decided prefix: the host replays it into the service,
  // which also rebuilds the reply cache (deterministic re-execution).
  try_deliver(out);
}

void Engine::on_message(ReplicaId from, const Message& message, std::vector<Effect>& out) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Prepare>) {
          handle_prepare(from, m, out);
        } else if constexpr (std::is_same_v<T, PrepareOk>) {
          handle_prepare_ok(from, m, out);
        } else if constexpr (std::is_same_v<T, Propose>) {
          handle_propose(from, m, out);
        } else if constexpr (std::is_same_v<T, Accept>) {
          handle_accept(from, m, out);
        } else if constexpr (std::is_same_v<T, Heartbeat>) {
          handle_heartbeat(from, m, out);
        } else if constexpr (std::is_same_v<T, CatchupQuery>) {
          handle_catchup_query(from, m, out);
        } else if constexpr (std::is_same_v<T, CatchupReply>) {
          handle_catchup_reply(from, m, out);
        } else if constexpr (std::is_same_v<T, SnapshotOffer>) {
          handle_snapshot_offer(from, m, out);
        } else if constexpr (std::is_same_v<T, LeaseGrant>) {
          handle_lease_grant(from, m);
        }
      },
      message);
}

// ---------------------------------------------------------------------------
// View changes (Phase 1)
// ---------------------------------------------------------------------------

void Engine::adopt_view(ViewId view, std::vector<Effect>& out) {
  if (view <= view_) return;  // callers adopt only strictly-higher views
  view_ = view;
  role_ = Role::kFollower;
  prepare_ok_mask_ = 0;
  prepare_union_.clear();
  reset_lease_leader_state();
  persist_promise();  // never answer a lower Prepare after a crash
  out.push_back(CancelAllRetransmits{});
  out.push_back(ViewChanged{view_, false});
}

void Engine::become_candidate(std::vector<Effect>& out) {
  // Smallest view above the current one that this replica leads. If we are
  // already candidate/leader of view_, move to the next one we lead (the
  // current leadership evidently failed to make progress).
  ViewId target = view_;
  do {
    ++target;
  } while (config_.leader_of_view(target) != self_);
  // Special case: initial start() — replica 0 may prepare view 0 itself.
  if (view_ == 0 && role_ == Role::kFollower && config_.leader_of_view(0) == self_ &&
      log_.first_undecided() == 0 && next_instance_ == 0) {
    target = 0;
  }

  view_ = target;
  role_ = Role::kCandidate;
  prepare_from_ = log_.first_undecided();
  prepare_ok_mask_ = bit(self_);
  prepare_union_.clear();
  reset_lease_leader_state();
  persist_promise();  // a candidacy is a promise to our own view

  // Seed the union with our own log suffix.
  for (InstanceId id = prepare_from_; id < log_.end(); ++id) {
    const LogEntry* e = log_.find(id);
    if (e == nullptr || !e->has_value()) continue;
    PrepareEntry entry{id, e->accepted_view, e->decided(), e->value};
    prepare_union_[id] = std::move(entry);
  }

  out.push_back(CancelAllRetransmits{});
  out.push_back(ViewChanged{view_, false});

  if (config_.n == 1) {
    become_leader(out);
    return;
  }
  Prepare prepare{view_, prepare_from_};
  out.push_back(BroadcastMsg{prepare});
  out.push_back(ScheduleRetransmit{prepare_retransmit_key(view_), prepare});
}

void Engine::handle_prepare(ReplicaId from, const Prepare& m, std::vector<Effect>& out) {
  if (m.view < view_) return;  // stale candidate; it will observe us later
  if (config_.leader_of_view(m.view) != from || from == self_) return;
  // Lease vote refusal: while our grant to the current leader is live,
  // answering would let a new leader commit inside the old lease. The
  // candidate retransmits its Prepare, so refusal is deferral, not loss.
  if (grant_blocks(from)) return;
  if (m.view > view_) adopt_view(m.view, out);
  // m.view == view_: idempotent re-reply to a retransmitted Prepare.

  PrepareOk ok;
  ok.view = m.view;
  ok.first_undecided = log_.first_undecided();
  const InstanceId start = std::max(m.from_instance, log_.base());
  for (InstanceId id = start; id < log_.end(); ++id) {
    const LogEntry* e = log_.find(id);
    if (e == nullptr || !e->has_value()) continue;
    ok.entries.push_back(PrepareEntry{id, e->accepted_view, e->decided(), e->value});
  }
  out.push_back(SendTo{from, std::move(ok)});
}

void Engine::handle_prepare_ok(ReplicaId from, const PrepareOk& m, std::vector<Effect>& out) {
  if (role_ != Role::kCandidate || m.view != view_) return;

  for (const auto& entry : m.entries) {
    auto [it, inserted] = prepare_union_.try_emplace(entry.instance, entry);
    if (inserted) continue;
    PrepareEntry& best = it->second;
    if (best.decided) continue;
    if (entry.decided || entry.accepted_view > best.accepted_view) best = entry;
  }

  prepare_ok_mask_ |= bit(from);
  if (__builtin_popcountll(prepare_ok_mask_) >= config_.quorum()) {
    become_leader(out);
  }
}

void Engine::become_leader(std::vector<Effect>& out) {
  role_ = Role::kLeader;
  reset_lease_leader_state();  // the lease is earned grant by grant, not by election
  out.push_back(CancelRetransmit{prepare_retransmit_key(view_)});

  // One past the highest instance any quorum member reported.
  const InstanceId stop =
      prepare_union_.empty() ? prepare_from_ : prepare_union_.rbegin()->first + 1;

  // Close every open instance the quorum reported: adopt decided values,
  // re-propose the highest-view accepted value, and fill gaps with no-ops
  // so the decided sequence has no holes.
  for (InstanceId id = prepare_from_; id < stop; ++id) {
    if (log_.is_decided(id)) continue;
    auto it = prepare_union_.find(id);
    if (it != prepare_union_.end() && it->second.decided) {
      // Re-propose so followers that missed the decision converge, then
      // decide locally without waiting for votes.
      propose_now(id, Bytes(it->second.value), out);
      decide(id, out);
      continue;
    }
    Bytes value =
        it != prepare_union_.end() ? it->second.value : encode_batch({});  // gap: no-op
    propose_now(id, std::move(value), out);
  }

  next_instance_ = std::max({next_instance_, stop, prepare_from_});
  prepare_union_.clear();
  out.push_back(ViewChanged{view_, true});
}

// ---------------------------------------------------------------------------
// Ordering (Phase 2)
// ---------------------------------------------------------------------------

bool Engine::on_batch(Bytes batch, std::vector<Effect>& out) {
  if (role_ != Role::kLeader || !window_available()) return false;
  const InstanceId instance = next_instance_++;
  propose_now(instance, std::move(batch), out);
  return true;
}

void Engine::propose_now(InstanceId instance, Bytes value, std::vector<Effect>& out) {
  LogEntry& e = log_.entry(instance);
  if (e.decided()) return;
  e.state = InstanceState::kKnown;
  e.accepted_view = view_;
  e.value = std::move(value);
  // Our proposal carries our own acceptance.
  if (view_ > e.vote_view) {
    e.vote_view = view_;
    e.vote_mask = 0;
  }
  e.vote_mask |= bit(self_);
  persist_accept(instance, view_, e.value);  // the proposal carries our acceptance

  Propose propose{view_, instance, e.value};
  out.push_back(ScheduleRetransmit{propose_retransmit_key(instance), propose});
  out.push_back(BroadcastMsg{std::move(propose)});
  if (next_instance_ <= instance) next_instance_ = instance + 1;

  // Single-replica cluster: our own vote is already a quorum.
  record_vote(instance, view_, self_, out);
}

void Engine::handle_propose(ReplicaId from, const Propose& m, std::vector<Effect>& out) {
  if (m.view < view_) return;
  if (config_.leader_of_view(m.view) != from) return;
  if (m.view > view_) adopt_view(m.view, out);

  if (m.instance < log_.base()) return;  // already snapshotted past it
  LogEntry& e = log_.entry(m.instance);
  if (!e.decided()) {
    if (m.view >= e.accepted_view) {
      e.state = InstanceState::kKnown;
      e.accepted_view = m.view;
      e.value = m.value;
      persist_accept(m.instance, m.view, e.value);
    }
  }

  // Broadcast our acceptance to every replica (learners count votes).
  out.push_back(BroadcastMsg{Accept{m.view, m.instance}});

  // The proposal implies the leader's acceptance; count both votes.
  record_vote(m.instance, m.view, from, out);
  record_vote(m.instance, m.view, self_, out);
}

void Engine::handle_accept(ReplicaId from, const Accept& m, std::vector<Effect>& out) {
  if (m.view < view_) return;
  if (m.view > view_) adopt_view(m.view, out);
  if (m.instance < log_.base()) return;
  record_vote(m.instance, m.view, from, out);
}

void Engine::record_vote(InstanceId instance, ViewId vote_view, ReplicaId voter,
                         std::vector<Effect>& out) {
  if (instance < log_.base()) return;
  LogEntry& e = log_.entry(instance);
  if (e.decided()) return;
  if (vote_view < e.vote_view) return;  // stale ballot
  if (vote_view > e.vote_view) {
    e.vote_view = vote_view;
    e.vote_mask = 0;
  }
  e.vote_mask |= bit(voter);
  // Decide only when we hold the value certified by this ballot.
  if (e.vote_count() >= config_.quorum() && e.has_value() && e.accepted_view == e.vote_view) {
    decide(instance, out);
  }
}

void Engine::decide(InstanceId instance, std::vector<Effect>& out) {
  const LogEntry* e = log_.find(instance);
  if (e == nullptr) return;
  Bytes value = e->value;
  if (!log_.decide(instance, std::move(value))) return;
  persist_decide(instance, log_.find(instance)->value);
  out.push_back(CancelRetransmit{propose_retransmit_key(instance)});
  try_deliver(out);
}

void Engine::try_deliver(std::vector<Effect>& out) {
  while (next_deliver_ < log_.end() && log_.is_decided(next_deliver_)) {
    const LogEntry* e = log_.find(next_deliver_);
    if (e == nullptr) break;  // truncated: snapshot install moves the cursor
    out.push_back(Deliver{next_deliver_, e->value});
    ++next_deliver_;
  }
}

// ---------------------------------------------------------------------------
// Liveness: heartbeats, suspicion, catch-up
// ---------------------------------------------------------------------------

void Engine::on_heartbeat_timer(std::vector<Effect>& out) {
  if (role_ != Role::kLeader) return;
  const std::uint64_t sent_at = lease_enabled() ? local_now_ns() : 0;
  out.push_back(BroadcastMsg{Heartbeat{view_, log_.first_undecided(), sent_at}});
  if (lease_enabled()) refresh_lease();
}

void Engine::handle_heartbeat(ReplicaId from, const Heartbeat& m, std::vector<Effect>& out) {
  if (m.view < view_) return;
  if (config_.leader_of_view(m.view) != from) return;
  if (m.view > view_) adopt_view(m.view, out);
  known_leader_undecided_ = std::max(known_leader_undecided_, m.first_undecided);
  if (lease_enabled() && m.sent_at_ns != 0) {
    // Accepting the heartbeat grants the lease: promise not to vote for
    // anyone else for a lease window on OUR clock, and echo the stamp so
    // the leader can bound the grant on ITS clock.
    lease_granted_to_ = from;
    lease_granted_until_ns_ =
        std::max(lease_granted_until_ns_, local_now_ns() + config_.lease_duration_ns);
    out.push_back(SendTo{from, LeaseGrant{view_, m.sent_at_ns}});
  }
}

void Engine::on_suspect_leader(std::vector<Effect>& out) {
  if (role_ == Role::kLeader) return;  // we do not suspect ourselves
  // Our own grant also binds ourselves: hold candidacy until it expires
  // (the failure detector keeps re-raising suspicion, so only deferral).
  if (grant_blocks(self_)) return;
  become_candidate(out);
}

void Engine::handle_lease_grant(ReplicaId from, const LeaseGrant& m) {
  if (!lease_enabled() || role_ != Role::kLeader || m.view != view_) return;
  if (from >= grant_deadline_.size()) return;
  const std::uint64_t duration = config_.lease_duration_ns;
  const std::uint64_t margin = std::min(config_.lease_drift_margin_ns, duration);
  // The grantor holds its promise for `duration` on its clock from heartbeat
  // RECEIPT; converting from our SEND stamp is strictly conservative, and
  // the margin absorbs clock-rate drift over the window.
  grant_deadline_[from] =
      std::max(grant_deadline_[from], m.echo_sent_at_ns + (duration - margin));
  refresh_lease();
}

bool Engine::grant_blocks(ReplicaId candidate) const {
  if (!lease_enabled()) return false;
  // A leader whose computed lease is live is serving local reads on the
  // promise that no one else can be elected meanwhile; it must hold that
  // promise itself too. It receives no heartbeats, so it carries no grant
  // state — without this check its vote alone could complete a candidate's
  // quorum (n=3: candidate + old leader) inside the old lease.
  if (role_ == Role::kLeader && candidate != self_ && local_now_ns() < lease_until_ns_) {
    return true;
  }
  if (lease_granted_until_ns_ == 0) return false;
  if (candidate == lease_granted_to_) return false;
  return local_now_ns() < lease_granted_until_ns_;
}

void Engine::refresh_lease() {
  if (!lease_enabled() || role_ != Role::kLeader) {
    lease_until_ns_ = 0;
    return;
  }
  // The lease holds while a QUORUM of replicas still refuses other
  // candidates: our own (continuous, margin-free) self-grant plus the
  // quorum'th-freshest follower echo.
  std::vector<std::uint64_t> deadlines = grant_deadline_;
  deadlines[self_] = local_now_ns() + config_.lease_duration_ns;
  const auto nth = deadlines.begin() + (config_.quorum() - 1);
  std::nth_element(deadlines.begin(), nth, deadlines.end(), std::greater<>());
  lease_until_ns_ = *nth;
}

void Engine::reset_lease_leader_state() {
  lease_until_ns_ = 0;
  std::fill(grant_deadline_.begin(), grant_deadline_.end(), 0);
}

void Engine::on_catchup_timer(std::vector<Effect>& out) {
  // How far the cluster has provably progressed beyond us.
  InstanceId target = known_leader_undecided_;
  // Anything we voted on / saw proposed above first_undecided also counts.
  target = std::max(target, log_.end());
  const InstanceId start = log_.first_undecided();
  if (target <= start) return;
  if (role_ == Role::kLeader) return;  // the leader closes its own gaps

  constexpr std::size_t kMaxPerQuery = 256;
  CatchupQuery query;
  query.from_instance = start;
  for (InstanceId id = start; id < target && query.instances.size() < kMaxPerQuery; ++id) {
    if (!log_.is_decided(id)) query.instances.push_back(id);
  }
  if (query.instances.empty()) return;

  // Ask a random other replica; decided values are everywhere by quorum,
  // and spreading queries keeps the leader off the critical path.
  ReplicaId peer = self_;
  while (peer == self_) {
    peer = static_cast<ReplicaId>(rng_.uniform(static_cast<std::uint64_t>(config_.n)));
  }
  out.push_back(SendTo{peer, std::move(query)});
}

void Engine::handle_catchup_query(ReplicaId from, const CatchupQuery& m,
                                  std::vector<Effect>& out) {
  // If the request reaches below our log base we cannot serve values;
  // offer a snapshot instead (state transfer).
  if (m.from_instance < log_.base() && snapshot_provider_) {
    if (auto snapshot = snapshot_provider_()) {
      out.push_back(SendTo{
          from, SnapshotOffer{snapshot->next_instance, *snapshot->state,
                              snapshot->reply_cache}});
      return;
    }
  }

  CatchupReply reply;
  for (InstanceId id : m.instances) {
    const LogEntry* e = log_.find(id);
    if (e != nullptr && e->decided()) {
      reply.decided.push_back(CatchupDecided{id, e->value});
    }
  }
  if (!reply.decided.empty()) out.push_back(SendTo{from, std::move(reply)});
}

void Engine::handle_catchup_reply(ReplicaId /*from*/, const CatchupReply& m,
                                  std::vector<Effect>& out) {
  for (const auto& item : m.decided) {
    if (item.instance < log_.base()) continue;
    LogEntry& e = log_.entry(item.instance);
    if (e.decided()) continue;
    e.state = InstanceState::kKnown;
    e.value = item.value;
    decide(item.instance, out);
  }
}

void Engine::handle_snapshot_offer(ReplicaId /*from*/, const SnapshotOffer& m,
                                   std::vector<Effect>& out) {
  if (m.next_instance <= log_.first_undecided()) return;  // nothing new
  out.push_back(InstallSnapshot{m.next_instance, m.state, m.reply_cache});
  log_.truncate_before(m.next_instance);
  if (next_deliver_ < m.next_instance) next_deliver_ = m.next_instance;
  if (next_instance_ < m.next_instance) next_instance_ = m.next_instance;
  // The installed snapshot replaces the truncated prefix on disk too.
  persist_checkpoint(SnapshotData{m.next_instance, shared_state_bytes(Bytes(m.state)),
                                  m.reply_cache});
  try_deliver(out);
}

void Engine::on_local_snapshot(InstanceId next_instance) {
  // Keep a short tail above the snapshot so common catch-up queries can
  // still be served from the log instead of shipping full state.
  if (next_instance > log_.base()) log_.truncate_before(next_instance);
  // Compact the durable log against the freshly captured snapshot. Without
  // a provider the on-disk prefix must stay (it is the only copy of the
  // decided history), so skip GC rather than lose state.
  if (storage_->persistent() && snapshot_provider_) {
    if (auto snapshot = snapshot_provider_()) {
      if (snapshot->next_instance >= next_instance) persist_checkpoint(*snapshot);
    }
  }
}

}  // namespace mcsmr::paxos
