// Batching policy (§III-A, [12]): group client requests into one consensus
// value, closing a batch when it reaches BSZ bytes or when its oldest
// request has waited batch_timeout.
//
// Pure bookkeeping, no threads: the Batcher thread owns one BatchBuilder
// and drives it with requests popped from the RequestQueue. Keeping the
// policy separate makes it unit-testable and lets benches sweep BSZ
// without touching threading code.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "paxos/types.hpp"

namespace mcsmr::paxos {

class BatchBuilder {
 public:
  /// `max_bytes` is the BSZ limit on the *encoded batch* size;
  /// `timeout_ns` bounds how long a partial batch may wait for company.
  BatchBuilder(std::uint32_t max_bytes, std::uint64_t timeout_ns)
      : max_bytes_(max_bytes), timeout_ns_(timeout_ns) {}

  /// Classify requests at batch-build time (early scheduling): each added
  /// request is classified once and its footprint travels inside the batch
  /// via the classified (v2) encoding, so replicas schedule execution
  /// without re-running classify() post-decide. Must be called while the
  /// builder is empty; the classifier must be a pure function of the
  /// request bytes. Unset (default) keeps the v1 encoding byte-identical.
  void set_classifier(std::function<RequestClass(const Bytes&)> classifier) {
    classifier_ = std::move(classifier);
    bytes_ = header_bytes();
  }

  /// Add a request (arrival time `now_ns`). Returns every batch this add
  /// closed (0, 1, or 2: the previously open batch if the request did not
  /// fit, plus the new batch if the request alone reaches BSZ). A request
  /// larger than BSZ forms a batch by itself.
  std::vector<Bytes> add(Request request, std::uint64_t now_ns);

  /// Deadline by which the open batch must be flushed, if one is open.
  std::optional<std::uint64_t> deadline_ns() const {
    if (pending_.empty()) return std::nullopt;
    return oldest_ns_ + timeout_ns_;
  }

  /// Flush the open batch if its deadline has passed (or `force`).
  std::optional<Bytes> poll(std::uint64_t now_ns, bool force = false);

  bool empty() const { return pending_.empty(); }
  std::size_t pending_requests() const { return pending_.size(); }
  std::size_t pending_bytes() const { return bytes_; }
  std::uint32_t max_bytes() const { return max_bytes_; }

 private:
  Bytes flush();
  /// v1: u32 count. v2 (classified): u32 magic + u32 count.
  std::size_t header_bytes() const { return classifier_ ? 8 : 4; }

  std::uint32_t max_bytes_;
  std::uint64_t timeout_ns_;
  std::function<RequestClass(const Bytes&)> classifier_;
  std::vector<Request> pending_;
  std::vector<RequestClass> footprints_;  ///< parallel to pending_ when classifying
  std::size_t bytes_ = 4;                 ///< encoded size so far, header included
  std::uint64_t oldest_ns_ = 0;
};

}  // namespace mcsmr::paxos
