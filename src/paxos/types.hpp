// Core identifier types and the client Request record.
//
// Terminology mapping to the paper: an ordering "ballot" is one consensus
// *instance* (a slot in the replicated log); the pipelining window WND
// bounds how many instances run concurrently; a *view* numbers leadership
// epochs, with the leader of view v being replica v mod n.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/config.hpp"

namespace mcsmr::paxos {

using ViewId = std::uint64_t;
using InstanceId = std::uint64_t;
using ClientId = std::uint64_t;
using RequestSeq = std::uint64_t;

/// One client command as carried inside a batch. `seq` is the client's
/// monotonically increasing request number, used by the reply cache for
/// at-most-once execution (§III-B).
struct Request {
  ClientId client_id = 0;
  RequestSeq seq = 0;
  Bytes payload;

  bool operator==(const Request&) const = default;

  void encode(ByteWriter& writer) const {
    writer.u64(client_id);
    writer.u64(seq);
    writer.bytes(payload);
  }
  static Request decode(ByteReader& reader) {
    Request request;
    request.client_id = reader.u64();
    request.seq = reader.u64();
    request.payload = reader.bytes();
    return request;
  }

  /// Serialized footprint (used by the batching policy against BSZ).
  std::size_t encoded_size() const { return 8 + 8 + 4 + payload.size(); }
};

/// Encode a batch (the value ordered by one consensus instance).
Bytes encode_batch(const std::vector<Request>& requests);
/// Decode a batch; throws DecodeError on malformed input.
std::vector<Request> decode_batch(const Bytes& value);

}  // namespace mcsmr::paxos
