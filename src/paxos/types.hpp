// Core identifier types and the client Request record.
//
// Terminology mapping to the paper: an ordering "ballot" is one consensus
// *instance* (a slot in the replicated log); the pipelining window WND
// bounds how many instances run concurrently; a *view* numbers leadership
// epochs, with the leader of view v being replica v mod n.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"

namespace mcsmr::paxos {

using ViewId = std::uint64_t;
using InstanceId = std::uint64_t;
using ClientId = std::uint64_t;
using RequestSeq = std::uint64_t;

/// One client command as carried inside a batch. `seq` is the client's
/// monotonically increasing request number, used by the reply cache for
/// at-most-once execution (§III-B).
struct Request {
  ClientId client_id = 0;
  RequestSeq seq = 0;
  Bytes payload;

  bool operator==(const Request&) const = default;

  void encode(ByteWriter& writer) const {
    writer.u64(client_id);
    writer.u64(seq);
    writer.bytes(payload);
  }
  static Request decode(ByteReader& reader) {
    Request request;
    request.client_id = reader.u64();
    request.seq = reader.u64();
    request.payload = reader.bytes();
    return request;
  }

  /// Serialized footprint (used by the batching policy against BSZ).
  std::size_t encoded_size() const { return 8 + 8 + 4 + payload.size(); }
};

/// Conflict classification of one request (Marandi/Alchieri-style
/// dependency tracking). Two requests CONFLICT — and must execute in
/// decided order — iff
///   * either is `global` (touches state the keys cannot name), or
///   * they share a key and at least one of them is not read_only.
/// Key hashes only ever group requests for scheduling: a hash collision
/// over-serializes (safe), never under-serializes, so any deterministic
/// per-process hash works.
///
/// Lives in the paxos layer because classification travels INSIDE the
/// batch encoding (early scheduling, Alchieri et al.): the leader's
/// Batcher classifies at batch-build time and every replica's executor
/// reuses the carried footprints instead of re-classifying post-decide.
struct RequestClass {
  std::vector<std::uint64_t> keys;  ///< hashes of the state keys touched
  bool read_only = false;           ///< does not mutate any named key
  bool global = true;               ///< conflicts with everything (safe default)

  bool operator==(const RequestClass&) const = default;

  static RequestClass conflict_free() { return {{}, false, false}; }
  static RequestClass read(std::uint64_t key) { return {{key}, true, false}; }
  static RequestClass write(std::uint64_t key) { return {{key}, false, false}; }

  /// Serialized footprint: u8 flags | u16 key_count | key_count * u64.
  std::size_t encoded_size() const { return 1 + 2 + 8 * keys.size(); }
};

/// Encode a batch (the value ordered by one consensus instance).
Bytes encode_batch(const std::vector<Request>& requests);
/// Decode a batch; throws DecodeError on malformed input. Accepts both
/// the v1 and the classified (v2) encoding, discarding footprints.
std::vector<Request> decode_batch(const Bytes& value);

/// Encode a classified batch (v2): the requests plus their conflict
/// footprints, so replicas schedule without re-running classify().
/// `classes.size()` must equal `requests.size()`.
Bytes encode_classified_batch(const std::vector<Request>& requests,
                              const std::vector<RequestClass>& classes);

/// A decoded batch of either encoding. `classified` records which one the
/// wire carried (v1 batches leave `classes` empty); re-encoding through
/// the matching encoder reproduces the input byte-for-byte.
struct DecodedBatch {
  std::vector<Request> requests;
  std::vector<RequestClass> classes;
  bool classified = false;
};

/// Decode a batch of either encoding; throws DecodeError on malformed
/// input (non-canonical flags, truncated footprints, trailing bytes).
DecodedBatch decode_any_batch(const Bytes& value);

}  // namespace mcsmr::paxos
