// Durable log storage behind the Paxos engine (ROADMAP open item 1).
//
// The engine records every safety-critical transition as a DurableRecord:
//   kPromise  — the acceptor adopted a view (it must never answer a lower
//               Prepare after a crash);
//   kAccept   — the acceptor stored a value for (view, instance) (it must
//               never deny that acceptance after a crash);
//   kDecide   — the learner decided (instance, value) (restart must
//               re-deliver the identical bytes);
//   kSnapshot — a service snapshot covering everything below
//               `next_instance` (restart installs it instead of replaying
//               from instance 0, and the storage may drop older records).
//
// Two implementations behind the LogStorage interface
// (Config::log_storage):
//   MemoryStorage  — today's behavior: nothing survives a crash; every
//                    append is instantly "durable" so the durability gate
//                    in the Protocol thread never queues anything;
//   SegmentStorage — append-only segment files of CRC-framed records with
//                    group-commit batched fsync on a dedicated flush
//                    thread. Appends are queued (never block on IO); the
//                    Protocol thread releases protocol acks only once
//                    durable_lsn() covers them, and the proposer pipeline
//                    runs at most Config::preexec_window records ahead of
//                    the durable point (libpaxos' pre-execution window).
//
// Crash-consistency contract of SegmentStorage::recover (run at open):
//   * a torn tail (partial frame or CRC mismatch at the END of the last
//     segment) is truncated away — those records were never acked;
//   * a CRC mismatch anywhere else is corruption and throws StorageError
//     (fail-stop: recovery refuses to invent state);
//   * fsync failure poisons the storage — every later append()/sync()
//     throws StorageError so the replica crashes instead of silently
//     running non-durable (fsync errors do not retry; see
//     checkpoint()/sync()).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/wait_strategy.hpp"
#include "paxos/types.hpp"

namespace mcsmr::paxos {

/// Storage failures are fail-stop: callers never catch-and-continue.
class StorageError : public std::runtime_error {
 public:
  explicit StorageError(const std::string& what) : std::runtime_error(what) {}
};

/// Log sequence number: 1-based append index, 0 = nothing appended.
using Lsn = std::uint64_t;

enum class RecordType : std::uint8_t {
  kPromise = 1,
  kAccept = 2,
  kDecide = 3,
  kSnapshot = 4,
};

struct DurableRecord {
  RecordType type = RecordType::kPromise;
  ViewId view = 0;          ///< kPromise / kAccept
  InstanceId instance = 0;  ///< kAccept / kDecide; kSnapshot: next_instance
  Bytes value;              ///< kAccept / kDecide value; kSnapshot: service state
  Bytes reply_cache;        ///< kSnapshot only

  static DurableRecord promise(ViewId view) { return {RecordType::kPromise, view, 0, {}, {}}; }
  static DurableRecord accept(ViewId view, InstanceId instance, Bytes value) {
    return {RecordType::kAccept, view, instance, std::move(value), {}};
  }
  static DurableRecord decide(InstanceId instance, Bytes value) {
    return {RecordType::kDecide, 0, instance, std::move(value), {}};
  }
  static DurableRecord snapshot(InstanceId next_instance, Bytes state, Bytes reply_cache) {
    return {RecordType::kSnapshot, 0, next_instance, std::move(state),
            std::move(reply_cache)};
  }
};

/// Record payload codec (the segment frame wraps this with length + CRC).
Bytes encode_record(const DurableRecord& record);
DurableRecord decode_record(std::span<const std::uint8_t> payload);  // throws DecodeError

/// CRC-32 (IEEE, reflected) over `data` — the per-record integrity check.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// The engine state reconstructed by replaying every surviving record.
struct RecoveredState {
  ViewId promised_view = 0;
  std::optional<DurableRecord> snapshot;  ///< latest kSnapshot, if any

  struct Entry {
    ViewId accepted_view = 0;
    Bytes value;
    bool decided = false;
  };
  std::map<InstanceId, Entry> entries;

  std::size_t records = 0;  ///< records replayed (introspection/tests)

  bool empty() const { return promised_view == 0 && !snapshot && entries.empty(); }
};

class LogStorage {
 public:
  virtual ~LogStorage() = default;

  virtual const char* name() const = 0;
  /// True if appends survive a process crash (the engine skips building
  /// checkpoint records for non-persistent storage).
  virtual bool persistent() const = 0;

  /// State recovered when the storage was opened (empty for memory).
  virtual const RecoveredState& recovered() const = 0;

  /// Queue `record` for durability and return its LSN. Never blocks on
  /// IO; durability is reached asynchronously (watch durable_lsn()).
  virtual Lsn append(const DurableRecord& record) = 0;

  virtual Lsn appended_lsn() const = 0;
  virtual Lsn durable_lsn() const = 0;

  /// Block until everything appended so far is durable.
  virtual void sync() = 0;

  /// Atomically replace the log's contents with `records` (a snapshot
  /// checkpoint: promise + snapshot + surviving entries) and drop all
  /// older records — the log-truncation path. Durable on return.
  virtual void checkpoint(const std::vector<DurableRecord>& records) = 0;

  bool all_durable() const { return durable_lsn() >= appended_lsn(); }
};

/// The pre-durability default: every append is immediately "durable" (a
/// crash loses everything, exactly as before this layer existed).
class MemoryStorage final : public LogStorage {
 public:
  const char* name() const override { return "memory"; }
  bool persistent() const override { return false; }
  const RecoveredState& recovered() const override { return recovered_; }
  Lsn append(const DurableRecord&) override { return ++lsn_; }
  Lsn appended_lsn() const override { return lsn_; }
  Lsn durable_lsn() const override { return lsn_; }
  void sync() override {}
  void checkpoint(const std::vector<DurableRecord>&) override {}

 private:
  RecoveredState recovered_;
  Lsn lsn_ = 0;
};

struct SegmentStorageOptions {
  std::string dir;  ///< segment directory (created if missing)
  /// Group-commit window: the flush thread batches appends and fsyncs at
  /// most once per window (0 = fsync after every write burst).
  std::uint64_t fsync_batch_ns = 1'000'000;
  /// Roll to a new segment file once the current one exceeds this.
  std::uint64_t segment_max_bytes = 8ull << 20;
  /// Test seam (fault injection): replaces ::fsync. Return < 0 to
  /// simulate an fsync failure (poisons the storage, fail-stop).
  std::function<int(int fd)> fsync_fn;
};

/// Append-only segment files: `seg-<seq>.mcl`, each a fixed header
/// followed by `[u32 len][u32 crc32(payload)][payload]` frames.
class SegmentStorage final : public LogStorage {
 public:
  /// Opens `options.dir`, recovers every surviving record (truncating a
  /// torn tail in place), and starts the flush thread. Throws
  /// StorageError on unreadable directories or mid-log corruption.
  explicit SegmentStorage(SegmentStorageOptions options);
  ~SegmentStorage() override;

  const char* name() const override { return "segment"; }
  bool persistent() const override { return true; }
  const RecoveredState& recovered() const override { return recovered_; }
  Lsn append(const DurableRecord& record) override;
  Lsn appended_lsn() const override { return appended_.load(std::memory_order_acquire); }
  Lsn durable_lsn() const override { return durable_.load(std::memory_order_acquire); }
  void sync() override;
  void checkpoint(const std::vector<DurableRecord>& records) override;

  // --- introspection / fault injection (tests) -----------------------------

  /// Drop every record not yet written to the OS and stop without a final
  /// flush — the volatile tail a real crash would lose. The object is dead
  /// afterwards; destroy it and reopen the directory to recover.
  void simulate_crash();

  bool failed() const { return failed_.load(std::memory_order_acquire); }
  std::size_t segment_count() const;
  std::uint64_t fsync_count() const { return fsyncs_.load(std::memory_order_relaxed); }

 private:
  struct Pending {
    Lsn lsn = 0;
    Bytes frame;  ///< encoded [len][crc][payload]
  };

  void flush_loop();
  /// Write `chunk` to the active segment (rolls first if needed); caller
  /// holds no lock. Returns false once the storage is poisoned.
  bool write_chunk(const std::vector<Pending>& chunk);
  bool do_fsync();
  void poison(const std::string& why);
  void open_fresh_segment();  ///< seal current, open seg-<next>; throws
  void recover();             ///< scan + truncate torn tail; throws

  bool has_pending() const;
  bool sync_requested() const;

  SegmentStorageOptions options_;
  RecoveredState recovered_;

  mutable std::mutex mu_;         ///< pending_ and the appended_ counter
  std::vector<Pending> pending_;  ///< appended, not yet written

  mutable std::mutex io_mu_;  ///< fd/segment bookkeeping (flush vs checkpoint)
  std::vector<std::uint32_t> segments_;  ///< live segment sequence numbers
  int fd_ = -1;                          ///< active segment
  std::uint64_t active_bytes_ = 0;
  std::uint32_t next_segment_ = 1;

  std::atomic<Lsn> appended_{0};
  std::atomic<Lsn> durable_{0};
  std::atomic<Lsn> sync_target_{0};  ///< fsync immediately up to this LSN
  std::atomic<bool> failed_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> fsyncs_{0};

  WaitStrategy flush_wake_;    ///< appenders -> flush thread
  WaitStrategy durable_wake_;  ///< flush thread -> sync() waiters
  std::thread flush_thread_;
};

/// Config-driven factory: one storage per (replica, partition), with
/// segment directories laid out as `<log_dir>/r<replica>/p<partition>`.
std::unique_ptr<LogStorage> make_log_storage(const Config& config, ReplicaId self,
                                             std::uint32_t partition);

}  // namespace mcsmr::paxos
