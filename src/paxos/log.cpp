#include "paxos/log.hpp"

#include <cassert>

namespace mcsmr::paxos {

LogEntry& ReplicatedLog::entry(InstanceId instance) {
  assert(instance >= base_ && "access below log base (truncated)");
  const std::size_t index = instance - base_;
  if (index >= entries_.size()) entries_.resize(index + 1);
  return entries_[index];
}

const LogEntry* ReplicatedLog::find(InstanceId instance) const {
  if (instance < base_) return nullptr;
  const std::size_t index = instance - base_;
  if (index >= entries_.size()) return nullptr;
  return &entries_[index];
}

bool ReplicatedLog::decide(InstanceId instance, Bytes value) {
  if (instance < base_) return false;  // superseded by a snapshot
  LogEntry& e = entry(instance);
  if (e.decided()) return false;
  e.state = InstanceState::kDecided;
  e.value = std::move(value);
  advance_first_undecided();
  return true;
}

void ReplicatedLog::advance_first_undecided() {
  while (first_undecided_ < end()) {
    const LogEntry* e = find(first_undecided_);
    if (e == nullptr || !e->decided()) break;
    ++first_undecided_;
  }
  if (first_undecided_ < base_) first_undecided_ = base_;
}

void ReplicatedLog::truncate_before(InstanceId new_base) {
  if (new_base <= base_) return;
  const std::size_t drop =
      std::min(entries_.size(), static_cast<std::size_t>(new_base - base_));
  entries_.erase(entries_.begin(), entries_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_ = new_base;
  if (first_undecided_ < base_) first_undecided_ = base_;
  advance_first_undecided();
}

}  // namespace mcsmr::paxos
