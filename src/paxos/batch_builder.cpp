#include "paxos/batch_builder.hpp"

#include "paxos/messages.hpp"

namespace mcsmr::paxos {

std::vector<Bytes> BatchBuilder::add(Request request, std::uint64_t now_ns) {
  RequestClass footprint;
  std::size_t need = request.encoded_size();
  if (classifier_) {
    footprint = classifier_(request.payload);
    need += footprint.encoded_size();
  }
  std::vector<Bytes> closed;
  if (!pending_.empty() && bytes_ + need > max_bytes_) {
    closed.push_back(flush());
  }
  if (pending_.empty()) oldest_ns_ = now_ns;
  bytes_ += need;
  pending_.push_back(std::move(request));
  if (classifier_) footprints_.push_back(std::move(footprint));
  // An oversized single request still ships — as a batch of one.
  if (bytes_ >= max_bytes_) {
    closed.push_back(flush());
  }
  return closed;
}

std::optional<Bytes> BatchBuilder::poll(std::uint64_t now_ns, bool force) {
  if (pending_.empty()) return std::nullopt;
  if (!force && now_ns < oldest_ns_ + timeout_ns_) return std::nullopt;
  return flush();
}

Bytes BatchBuilder::flush() {
  Bytes value = classifier_ ? encode_classified_batch(pending_, footprints_)
                            : encode_batch(pending_);
  pending_.clear();
  footprints_.clear();
  bytes_ = header_bytes();
  return value;
}

}  // namespace mcsmr::paxos
