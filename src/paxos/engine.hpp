// The replication protocol engine: view-based MultiPaxos with batching and
// pipelining, expressed as a *pure* event-driven state machine.
//
// The engine owns the replicated log and all protocol state and is driven
// exclusively by the Protocol thread (§V-C2: "this thread has exclusive
// write access to the bulk of the state of the ReplicationCore module").
// Inputs are messages, timer ticks and ready batches; outputs are Effects
// (messages to send, decisions to deliver, retransmissions to (un)arm).
// Because no thread or I/O concern leaks in here, the protocol is testable
// deterministically: property tests drive random schedules with drops,
// duplication and reordering and assert Paxos safety.
//
// Protocol sketch (one leader per view, view v led by replica v mod n):
//   * A replica that suspects the leader becomes a candidate for the next
//     view it leads and broadcasts Prepare(view, from=first_undecided).
//   * Acceptors at a lower view adopt it and answer PrepareOk with their
//     log suffix (accepted and decided entries).
//   * On a quorum of PrepareOk the candidate becomes leader: decided
//     entries are adopted, the highest-view accepted value is re-proposed
//     for every open instance, gaps are filled with no-op batches, and new
//     batches may then be proposed into the pipelining window (WND).
//   * Propose(view, instance, batch) implies the leader's own acceptance;
//     every acceptor that accepts broadcasts Accept(view, instance) to all
//     replicas. Any replica that holds the value accepted in view v and
//     observes a quorum of acceptances for v decides the instance — the
//     leader thus decides after its own accept plus quorum-1 Accepts,
//     matching the paper's "at least one Phase 2b from another replica"
//     for n=3 (§VI-D2).
//   * Decided instances are delivered in log order. Lagging replicas pull
//     decided values via CatchupQuery; if the peer already truncated its
//     log, it answers with a SnapshotOffer (state transfer).
//
// Leader leases (Config::read_path == kLease; docs/ARCHITECTURE.md "Read
// path"): every heartbeat a follower accepts doubles as a lease grant —
// the follower promises not to vote for (or become) another leader for
// lease_duration_ns on its own clock, and echoes the heartbeat's send
// stamp back in a LeaseGrant. The leader converts each echo into a
// deadline on its own clock (echo + duration - drift margin) and holds
// the lease while a quorum of deadlines (its own continuous self-grant
// included) lies in the future: by quorum intersection no new leader can
// be elected while the lease is held, so a lease-holding leader may serve
// reads locally. Durations — never absolute remote timestamps — enter the
// arithmetic, so constant clock offsets cancel; rate drift over one lease
// window is covered by the margin.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "common/rand.hpp"
#include "paxos/log.hpp"
#include "paxos/messages.hpp"
#include "paxos/storage.hpp"

namespace mcsmr::paxos {

// ---------------------------------------------------------------------------
// Effects: everything the engine asks its host (the Protocol thread) to do.
// ---------------------------------------------------------------------------

struct SendTo {
  ReplicaId to = 0;
  Message message;
};
struct BroadcastMsg {
  Message message;
};
/// Deliver a decided batch to the service, strictly in instance order.
struct Deliver {
  InstanceId instance = 0;
  Bytes value;
};
/// Arm periodic re-broadcast of `message` until cancelled by key.
struct ScheduleRetransmit {
  std::uint64_t key = 0;
  Message message;
};
struct CancelRetransmit {
  std::uint64_t key = 0;
};
/// Drop every armed retransmission (on view adoption).
struct CancelAllRetransmits {};
/// Role/view transition notification (drives the failure detector).
struct ViewChanged {
  ViewId view = 0;
  bool is_leader = false;
};
/// Install a received snapshot before executing further deliveries.
struct InstallSnapshot {
  InstanceId next_instance = 0;
  Bytes state;
  Bytes reply_cache;
};

using Effect = std::variant<SendTo, BroadcastMsg, Deliver, ScheduleRetransmit,
                            CancelRetransmit, CancelAllRetransmits, ViewChanged,
                            InstallSnapshot>;

/// Retransmission keys: Propose keyed by instance, Prepare keyed by view.
inline std::uint64_t propose_retransmit_key(InstanceId instance) { return instance << 1; }
inline std::uint64_t prepare_retransmit_key(ViewId view) { return (view << 1) | 1; }

/// Snapshot data served to lagging peers; provided by the ServiceManager.
/// `state` is an immutable shared buffer: a partitioned replica stitches
/// ONE whole-replica manifest and hands the same allocation to all P
/// engines instead of copying it per pipeline.
struct SnapshotData {
  InstanceId next_instance = 0;
  std::shared_ptr<const Bytes> state = std::make_shared<const Bytes>();
  Bytes reply_cache;
};

inline std::shared_ptr<const Bytes> shared_state_bytes(Bytes bytes) {
  return std::make_shared<const Bytes>(std::move(bytes));
}

class Engine {
 public:
  /// `storage` persists acceptor/learner transitions (promise, accept,
  /// decide, snapshot checkpoints); nullptr means a private MemoryStorage
  /// (no durability — the pre-storage behavior, and the default for
  /// engine-only tests). The engine appends but never waits: the host
  /// gates outbound acks on LogStorage::durable_lsn (see ProtocolThread).
  Engine(const Config& config, ReplicaId self, LogStorage* storage = nullptr);

  // --- Inputs (single caller: the Protocol thread) -------------------------

  /// Initial kick: restores any state the storage recovered from disk
  /// (re-emitting InstallSnapshot/Deliver effects so the host rebuilds the
  /// service), then the leader of view 0 starts Phase 1.
  void start(std::vector<Effect>& out);

  void on_message(ReplicaId from, const Message& message, std::vector<Effect>& out);

  /// Offer a batch for ordering. Returns false (batch not consumed) unless
  /// this replica is leader with pipeline window room.
  bool on_batch(Bytes batch, std::vector<Effect>& out);

  /// Failure-detector suspicion of the current leader.
  void on_suspect_leader(std::vector<Effect>& out);

  /// Leader heartbeat tick (driven by the FailureDetector thread cadence).
  void on_heartbeat_timer(std::vector<Effect>& out);

  /// Periodic catch-up scan for gaps behind the leader.
  void on_catchup_timer(std::vector<Effect>& out);

  /// Host hook: latest local snapshot for answering deep catch-up queries.
  void set_snapshot_provider(std::function<std::optional<SnapshotData>()> provider) {
    snapshot_provider_ = std::move(provider);
  }

  /// Host notification that the service installed a local snapshot; the
  /// log below `next_instance` can be dropped.
  void on_local_snapshot(InstanceId next_instance);

  /// Override the lease clock (tests). Default: Config::local_clock_ns(),
  /// which already folds in the clock-fault injection knobs. Only the
  /// lease logic reads time; under read_path=consensus the engine stays a
  /// pure deterministic state machine.
  void set_clock(std::function<std::uint64_t()> clock) { clock_ = std::move(clock); }

  // --- Queries --------------------------------------------------------------

  ViewId view() const { return view_; }
  bool is_leader() const { return role_ == Role::kLeader; }
  ReplicaId leader() const { return config_.leader_of_view(view_); }
  InstanceId first_undecided() const { return log_.first_undecided(); }
  InstanceId next_instance() const { return next_instance_; }

  /// Open pipeline slots in use — the paper's "parallel ballots" (Table I).
  std::uint32_t window_in_use() const {
    return next_instance_ > log_.first_undecided()
               ? static_cast<std::uint32_t>(next_instance_ - log_.first_undecided())
               : 0;
  }
  bool window_available() const { return window_in_use() < config_.window_size; }

  const ReplicatedLog& log() const { return log_; }

  /// Local-clock deadline until which this replica, as leader, holds a
  /// quorum lease and may serve local reads. 0 unless a lease-mode leader
  /// with a live quorum of grants.
  std::uint64_t lease_until_ns() const { return lease_until_ns_; }
  /// Local-clock deadline of the grant this replica, as follower, extended
  /// to the current leader (0 when none active). Exposed for tests.
  std::uint64_t lease_granted_until_ns() const { return lease_granted_until_ns_; }

 private:
  enum class Role { kFollower, kCandidate, kLeader };

  // Message handlers.
  void handle_prepare(ReplicaId from, const Prepare& m, std::vector<Effect>& out);
  void handle_prepare_ok(ReplicaId from, const PrepareOk& m, std::vector<Effect>& out);
  void handle_propose(ReplicaId from, const Propose& m, std::vector<Effect>& out);
  void handle_accept(ReplicaId from, const Accept& m, std::vector<Effect>& out);
  void handle_heartbeat(ReplicaId from, const Heartbeat& m, std::vector<Effect>& out);
  void handle_catchup_query(ReplicaId from, const CatchupQuery& m, std::vector<Effect>& out);
  void handle_catchup_reply(ReplicaId from, const CatchupReply& m, std::vector<Effect>& out);
  void handle_snapshot_offer(ReplicaId from, const SnapshotOffer& m, std::vector<Effect>& out);
  void handle_lease_grant(ReplicaId from, const LeaseGrant& m);

  /// Adopt `view` as follower (higher view observed). No-op if not higher.
  void adopt_view(ViewId view, std::vector<Effect>& out);
  /// Become candidate for the next view this replica leads.
  void become_candidate(std::vector<Effect>& out);
  /// Phase 1 quorum reached: take leadership, re-propose open instances.
  void become_leader(std::vector<Effect>& out);
  /// Propose `value` for `instance` at the current view (leader only).
  void propose_now(InstanceId instance, Bytes value, std::vector<Effect>& out);
  /// Count an Accept vote; decides when a quorum certifies a held value.
  void record_vote(InstanceId instance, ViewId vote_view, ReplicaId voter,
                   std::vector<Effect>& out);
  void decide(InstanceId instance, std::vector<Effect>& out);
  /// Emit Deliver effects for the contiguous decided prefix.
  void try_deliver(std::vector<Effect>& out);

  // Durability (no-ops on non-persistent storage, so the memory path pays
  // nothing — not even the record construction).
  void persist_promise();
  void persist_accept(InstanceId instance, ViewId view, const Bytes& value);
  void persist_decide(InstanceId instance, const Bytes& value);
  /// Rewrite the durable log as {promise, snapshot, surviving entries} and
  /// drop everything older (storage GC, tied to service snapshots).
  void persist_checkpoint(const SnapshotData& snapshot);
  /// Rebuild log/view state from what the storage recovered on open.
  void restore_from_storage(std::vector<Effect>& out);

  static std::uint64_t bit(ReplicaId id) { return 1ull << id; }

  // Lease machinery (all no-ops under read_path=consensus).
  /// Grant holder sentinel: blocks every candidate (post-restart hold-off,
  /// when the pre-crash grant — if any — is unknowable).
  static constexpr ReplicaId kGrantNobody = ~ReplicaId{0};
  bool lease_enabled() const { return config_.read_path == ReadPath::kLease; }
  std::uint64_t local_now_ns() const {
    return clock_ ? clock_() : config_.local_clock_ns();
  }
  /// True while our grant to another replica's leadership is still live —
  /// voting for (or becoming) a different leader would break the lease.
  bool grant_blocks(ReplicaId candidate) const;
  /// Recompute lease_until_ns_ from the per-replica grant deadlines.
  void refresh_lease();
  void reset_lease_leader_state();

  Config config_;
  ReplicaId self_;
  ReplicatedLog log_;

  std::unique_ptr<LogStorage> owned_storage_;  ///< fallback MemoryStorage
  LogStorage* storage_;  ///< never null; owned_storage_ or host-provided

  ViewId view_ = 0;
  Role role_ = Role::kFollower;

  // Candidate (Phase 1) state.
  std::uint64_t prepare_ok_mask_ = 0;
  InstanceId prepare_from_ = 0;
  std::map<InstanceId, PrepareEntry> prepare_union_;

  // Leader state.
  InstanceId next_instance_ = 0;

  // Learner state.
  InstanceId next_deliver_ = 0;

  // Catch-up state.
  InstanceId known_leader_undecided_ = 0;
  std::function<std::optional<SnapshotData>()> snapshot_provider_;

  // Lease state (read_path=lease only; local-clock nanoseconds).
  std::function<std::uint64_t()> clock_;
  ReplicaId lease_granted_to_ = 0;            ///< follower: leader we granted to
  std::uint64_t lease_granted_until_ns_ = 0;  ///< follower: grant deadline
  std::vector<std::uint64_t> grant_deadline_;  ///< leader: per-replica echo deadlines
  std::uint64_t lease_until_ns_ = 0;           ///< leader: quorum lease deadline

  Rng rng_;
};

}  // namespace mcsmr::paxos
