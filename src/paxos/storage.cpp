#include "paxos/storage.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/clock.hpp"
#include "common/logging.hpp"

namespace mcsmr::paxos {

namespace fs = std::filesystem;

namespace {

// Segment file layout: an 8-byte header (magic "MCSL" + version), then a
// sequence of frames [u32 len][u32 crc32(payload)][payload].
constexpr std::uint32_t kMagic = 0x4C53434D;  // "MCSL" little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kFrameHeaderBytes = 8;
/// Any frame claiming more than this is treated as framing corruption
/// (bounds the allocation recovery would otherwise attempt on garbage).
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Make a created/deleted directory entry itself durable (best effort:
/// some filesystems reject directory fsync; the data-file fsync is the
/// integrity-critical one and goes through the fault-injection seam).
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

Bytes make_frame(const DurableRecord& record) {
  const Bytes payload = encode_record(record);
  ByteWriter writer(kFrameHeaderBytes + payload.size());
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.u32(crc32(payload));
  writer.raw(payload);
  return writer.take();
}

/// Replay one record into the recovered state, in append order: later
/// records supersede earlier ones, and a snapshot subsumes everything
/// below its cut.
void apply_record(RecoveredState& state, DurableRecord&& record) {
  switch (record.type) {
    case RecordType::kPromise:
      state.promised_view = std::max(state.promised_view, record.view);
      break;
    case RecordType::kAccept: {
      auto& entry = state.entries[record.instance];
      if (!entry.decided) {
        entry.accepted_view = record.view;
        entry.value = std::move(record.value);
      }
      break;
    }
    case RecordType::kDecide: {
      auto& entry = state.entries[record.instance];
      entry.decided = true;
      entry.value = std::move(record.value);
      break;
    }
    case RecordType::kSnapshot: {
      const InstanceId cut = record.instance;
      state.snapshot = std::move(record);
      state.entries.erase(state.entries.begin(), state.entries.lower_bound(cut));
      break;
    }
  }
  ++state.records;
}

}  // namespace

// ---------------------------------------------------------------------------
// Record codec + CRC
// ---------------------------------------------------------------------------

Bytes encode_record(const DurableRecord& record) {
  ByteWriter writer(1 + 8 + 8 + 8 + record.value.size() + record.reply_cache.size());
  writer.u8(static_cast<std::uint8_t>(record.type));
  writer.u64(record.view);
  writer.u64(record.instance);
  writer.bytes(record.value);
  writer.bytes(record.reply_cache);
  return writer.take();
}

DurableRecord decode_record(std::span<const std::uint8_t> payload) {
  ByteReader reader(payload);
  DurableRecord record;
  const std::uint8_t type = reader.u8();
  if (type < static_cast<std::uint8_t>(RecordType::kPromise) ||
      type > static_cast<std::uint8_t>(RecordType::kSnapshot)) {
    throw DecodeError("unknown durable record type: " + std::to_string(type));
  }
  record.type = static_cast<RecordType>(type);
  record.view = reader.u64();
  record.instance = reader.u64();
  record.value = reader.bytes();
  record.reply_cache = reader.bytes();
  if (!reader.at_end()) throw DecodeError("trailing bytes in durable record");
  return record;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// SegmentStorage
// ---------------------------------------------------------------------------

SegmentStorage::SegmentStorage(SegmentStorageOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) throw StorageError("segment storage requires a directory");
  recover();
  open_fresh_segment();  // appends of this incarnation go to a new file
  flush_thread_ = std::thread([this] { flush_loop(); });
}

SegmentStorage::~SegmentStorage() {
  stop_.store(true, std::memory_order_release);
  flush_wake_.notify();
  if (flush_thread_.joinable()) flush_thread_.join();
  std::lock_guard<std::mutex> lock(io_mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

namespace {
std::string segment_name(std::uint32_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%08u.mcl", seq);
  return buf;
}
}  // namespace

void SegmentStorage::recover() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) throw StorageError("cannot create log dir " + options_.dir + ": " + ec.message());

  std::vector<std::uint32_t> seqs;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    unsigned seq = 0;
    char tail = 0;
    if (std::sscanf(name.c_str(), "seg-%8u.mc%c", &seq, &tail) == 2 && tail == 'l') {
      seqs.push_back(static_cast<std::uint32_t>(seq));
    }
  }
  std::sort(seqs.begin(), seqs.end());

  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const bool last = i + 1 == seqs.size();
    const std::string path = options_.dir + "/" + segment_name(seqs[i]);

    Bytes data;
    {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw StorageError("cannot open segment " + path);
      data.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }

    if (data.size() < kHeaderBytes) {
      // The file was created but its header never reached the disk; only
      // the newest segment can legitimately be in that state.
      if (!last) throw StorageError("truncated header in sealed segment " + path);
      fs::remove(path, ec);
      continue;
    }
    if (read_le32(data.data()) != kMagic || read_le32(data.data() + 4) != kVersion) {
      throw StorageError("bad segment header in " + path);
    }

    // Scan frames; `good` trails the end of the last fully-valid frame.
    std::size_t offset = kHeaderBytes;
    std::size_t good = kHeaderBytes;
    bool torn = false;
    while (offset + kFrameHeaderBytes <= data.size()) {
      const std::uint32_t len = read_le32(data.data() + offset);
      const std::uint32_t crc = read_le32(data.data() + offset + 4);
      if (len > kMaxRecordBytes || offset + kFrameHeaderBytes + len > data.size()) {
        torn = true;
        break;
      }
      const std::span<const std::uint8_t> payload(data.data() + offset + kFrameHeaderBytes,
                                                  len);
      if (crc32(payload) != crc) {
        torn = true;
        break;
      }
      DurableRecord record;
      try {
        record = decode_record(payload);
      } catch (const DecodeError&) {
        torn = true;
        break;
      }
      apply_record(recovered_, std::move(record));
      offset += kFrameHeaderBytes + len;
      good = offset;
    }

    if (good < data.size()) {
      // Bytes past the last valid frame: a torn tail on the newest segment
      // (records that were never acked — drop them), corruption anywhere
      // else (acked records are gone — refuse to run).
      if (!last) {
        throw StorageError("corrupt record in sealed segment " + path +
                           " at offset " + std::to_string(good));
      }
      (void)torn;
      fs::resize_file(path, good, ec);
      if (ec) throw StorageError("cannot truncate torn tail of " + path);
    }
    segments_.push_back(seqs[i]);
  }
  next_segment_ = seqs.empty() ? 1 : seqs.back() + 1;
}

void SegmentStorage::open_fresh_segment() {
  if (fd_ >= 0) {
    // Seal the active segment: its records must be durable before appends
    // continue in a new file.
    const int r = options_.fsync_fn ? options_.fsync_fn(fd_) : ::fsync(fd_);
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    ::close(fd_);
    fd_ = -1;
    if (r < 0) throw StorageError("fsync failed sealing segment in " + options_.dir);
  }
  const std::uint32_t seq = next_segment_++;
  const std::string path = options_.dir + "/" + segment_name(seq);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) throw StorageError("cannot create segment " + path);
  ByteWriter header(kHeaderBytes);
  header.u32(kMagic);
  header.u32(kVersion);
  if (!write_all(fd_, header.view().data(), header.view().size())) {
    throw StorageError("cannot write segment header to " + path);
  }
  fsync_dir(options_.dir);
  segments_.push_back(seq);
  active_bytes_ = kHeaderBytes;
}

Lsn SegmentStorage::append(const DurableRecord& record) {
  Pending pending{0, make_frame(record)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_.load(std::memory_order_acquire)) {
      throw StorageError("append on poisoned log storage (" + options_.dir + ")");
    }
    pending.lsn = appended_.load(std::memory_order_relaxed) + 1;
    appended_.store(pending.lsn, std::memory_order_release);
    pending_.push_back(std::move(pending));
  }
  const Lsn lsn = appended_.load(std::memory_order_relaxed);
  flush_wake_.notify();
  return lsn;
}

bool SegmentStorage::has_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !pending_.empty();
}

bool SegmentStorage::sync_requested() const {
  return sync_target_.load(std::memory_order_acquire) >
         durable_.load(std::memory_order_relaxed);
}

void SegmentStorage::flush_loop() {
  Lsn written = 0;  // highest LSN handed to the OS (write(2) done)
  std::uint64_t last_fsync = mono_ns();

  for (;;) {
    // Sleep until work arrives — or just long enough to honor the
    // group-commit window when written records still await their fsync.
    std::uint64_t timeout = kSeconds;
    if (written > durable_.load(std::memory_order_relaxed)) {
      const std::uint64_t elapsed = mono_ns() - last_fsync;
      timeout = elapsed >= options_.fsync_batch_ns ? 0 : options_.fsync_batch_ns - elapsed;
    }
    if (timeout > 0) {
      flush_wake_.await_for(
          [&] {
            return stop_.load(std::memory_order_acquire) || sync_requested() ||
                   has_pending();
          },
          timeout);
    }

    std::vector<Pending> chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      chunk.swap(pending_);
    }
    const bool stopping = stop_.load(std::memory_order_acquire);

    if (!chunk.empty() && !failed_.load(std::memory_order_acquire)) {
      if (write_chunk(chunk)) written = chunk.back().lsn;
    }
    if (failed_.load(std::memory_order_acquire)) {
      durable_wake_.notify();  // sync() waiters observe the poison
      if (stopping) break;
      continue;
    }

    if (written > durable_.load(std::memory_order_relaxed)) {
      const bool commit = stopping || sync_requested() || options_.fsync_batch_ns == 0 ||
                          mono_ns() - last_fsync >= options_.fsync_batch_ns;
      if (commit) {
        if (do_fsync()) durable_.store(written, std::memory_order_release);
        last_fsync = mono_ns();
        durable_wake_.notify();
      }
    }

    if (stopping && !has_pending()) break;
  }
  durable_wake_.notify();
}

bool SegmentStorage::write_chunk(const std::vector<Pending>& chunk) {
  std::lock_guard<std::mutex> lock(io_mu_);
  for (const Pending& pending : chunk) {
    if (active_bytes_ >= options_.segment_max_bytes) {
      try {
        open_fresh_segment();
      } catch (const StorageError& error) {
        poison(error.what());
        return false;
      }
    }
    if (!write_all(fd_, pending.frame.data(), pending.frame.size())) {
      poison("write failed on segment in " + options_.dir);
      return false;
    }
    active_bytes_ += pending.frame.size();
  }
  return true;
}

bool SegmentStorage::do_fsync() {
  int fd;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    fd = fd_;
  }
  const int r = options_.fsync_fn ? options_.fsync_fn(fd) : ::fsync(fd);
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  if (r < 0) {
    poison("fsync failed on segment in " + options_.dir);
    return false;
  }
  return true;
}

void SegmentStorage::poison(const std::string& why) {
  if (!failed_.exchange(true, std::memory_order_acq_rel)) {
    LOG_ERROR << "log storage poisoned: " << why;
  }
  durable_wake_.notify();
  flush_wake_.notify();
}

void SegmentStorage::sync() {
  if (failed_.load(std::memory_order_acquire)) {
    throw StorageError("sync on poisoned log storage (" + options_.dir + ")");
  }
  const Lsn target = appended_.load(std::memory_order_acquire);
  Lsn current = sync_target_.load(std::memory_order_relaxed);
  while (current < target &&
         !sync_target_.compare_exchange_weak(current, target, std::memory_order_acq_rel)) {
  }
  flush_wake_.notify();
  durable_wake_.await([&] {
    return failed_.load(std::memory_order_acquire) ||
           durable_.load(std::memory_order_acquire) >= target;
  });
  if (failed_.load(std::memory_order_acquire)) {
    throw StorageError("fsync failed; log storage is poisoned (" + options_.dir + ")");
  }
}

void SegmentStorage::checkpoint(const std::vector<DurableRecord>& records) {
  // Everything already appended must be on disk before we can claim the
  // checkpoint supersedes it.
  sync();

  std::lock_guard<std::mutex> lock(io_mu_);
  // Crash-safe order: write + fsync the replacement segment fully BEFORE
  // deleting its predecessors. A crash in between leaves both; replaying
  // old records then the checkpoint converges to the same state.
  try {
    open_fresh_segment();
  } catch (const StorageError& error) {
    poison(error.what());
    throw;
  }
  Lsn lsn = appended_.load(std::memory_order_relaxed);
  for (const DurableRecord& record : records) {
    const Bytes frame = make_frame(record);
    if (!write_all(fd_, frame.data(), frame.size())) {
      poison("write failed during checkpoint in " + options_.dir);
      throw StorageError("checkpoint write failed in " + options_.dir);
    }
    active_bytes_ += frame.size();
    ++lsn;
  }
  const int r = options_.fsync_fn ? options_.fsync_fn(fd_) : ::fsync(fd_);
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  if (r < 0) {
    poison("fsync failed during checkpoint in " + options_.dir);
    throw StorageError("checkpoint fsync failed in " + options_.dir);
  }

  // The checkpoint segment is durable; older segments are now garbage.
  const std::uint32_t keep = segments_.back();
  for (const std::uint32_t seq : segments_) {
    if (seq == keep) continue;
    std::error_code ec;
    fs::remove(options_.dir + "/" + segment_name(seq), ec);
  }
  segments_.assign(1, keep);
  fsync_dir(options_.dir);

  {
    // The caller (the Protocol thread) is the only appender, so no new
    // pending records raced in past the sync() above.
    std::lock_guard<std::mutex> pending_lock(mu_);
    appended_.store(lsn, std::memory_order_release);
  }
  durable_.store(lsn, std::memory_order_release);
  durable_wake_.notify();
}

void SegmentStorage::simulate_crash() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();  // the volatile tail a power loss would take
  }
  stop_.store(true, std::memory_order_release);
  flush_wake_.notify();
  if (flush_thread_.joinable()) flush_thread_.join();
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  failed_.store(true, std::memory_order_release);  // the incarnation is dead
  durable_wake_.notify();
}

std::size_t SegmentStorage::segment_count() const {
  std::lock_guard<std::mutex> lock(io_mu_);
  return segments_.size();
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<LogStorage> make_log_storage(const Config& config, ReplicaId self,
                                             std::uint32_t partition) {
  if (config.log_storage == StorageImpl::kMemory) return std::make_unique<MemoryStorage>();
  SegmentStorageOptions options;
  options.dir = config.log_dir + "/r" + std::to_string(self) + "/p" +
                std::to_string(partition);
  options.fsync_batch_ns = config.fsync_batch_ns;
  return std::make_unique<SegmentStorage>(std::move(options));
}

}  // namespace mcsmr::paxos
