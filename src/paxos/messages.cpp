#include "paxos/messages.hpp"

#include <algorithm>

namespace mcsmr::paxos {

namespace {

/// Version marker of the classified (v2) batch encoding. Unambiguous as a
/// leading u32: a v1 batch starting with count 0xFFFFFFFF would need
/// >= 85 GB of request bytes to decode, far past any real value, so the
/// marker can never collide with an accepted v1 input.
constexpr std::uint32_t kClassifiedBatchMagic = 0xFFFFFFFFu;

RequestClass decode_footprint(ByteReader& reader) {
  RequestClass cls;
  const std::uint8_t flags = reader.u8();
  // Canonical codec: only the two flag bits the encoder emits are valid.
  if (flags > 3) throw DecodeError("non-canonical footprint flags");
  cls.read_only = (flags & 1) != 0;
  cls.global = (flags & 2) != 0;
  const std::uint16_t key_count = reader.u16();
  cls.keys.reserve(std::min<std::size_t>(key_count, reader.remaining() / 8));
  for (std::uint16_t i = 0; i < key_count; ++i) cls.keys.push_back(reader.u64());
  return cls;
}

void encode_footprint(ByteWriter& writer, const RequestClass& cls) {
  writer.u8(static_cast<std::uint8_t>((cls.read_only ? 1 : 0) | (cls.global ? 2 : 0)));
  writer.u16(static_cast<std::uint16_t>(cls.keys.size()));
  for (const std::uint64_t key : cls.keys) writer.u64(key);
}

}  // namespace

Bytes encode_batch(const std::vector<Request>& requests) {
  std::size_t size = 4;
  for (const auto& request : requests) size += request.encoded_size();
  ByteWriter writer(size);
  writer.u32(static_cast<std::uint32_t>(requests.size()));
  for (const auto& request : requests) request.encode(writer);
  return writer.take();
}

Bytes encode_classified_batch(const std::vector<Request>& requests,
                              const std::vector<RequestClass>& classes) {
  std::size_t size = 8;
  for (const auto& request : requests) size += request.encoded_size();
  for (const auto& cls : classes) size += cls.encoded_size();
  ByteWriter writer(size);
  writer.u32(kClassifiedBatchMagic);
  writer.u32(static_cast<std::uint32_t>(requests.size()));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].encode(writer);
    encode_footprint(writer, classes[i]);
  }
  return writer.take();
}

DecodedBatch decode_any_batch(const Bytes& value) {
  ByteReader reader(value);
  DecodedBatch batch;
  const std::uint32_t head = reader.u32();
  if (head == kClassifiedBatchMagic) {
    batch.classified = true;
    const std::uint32_t count = reader.u32();
    // Clamp the reservations to what the input could actually hold (a
    // classified request is >= 23 bytes encoded) so a hostile count can't
    // force a multi-gigabyte allocation before the truncation check fires.
    const std::size_t cap = std::min<std::size_t>(count, reader.remaining() / 23);
    batch.requests.reserve(cap);
    batch.classes.reserve(cap);
    for (std::uint32_t i = 0; i < count; ++i) {
      batch.requests.push_back(Request::decode(reader));
      batch.classes.push_back(decode_footprint(reader));
    }
  } else {
    const std::uint32_t count = head;
    // v1: >= 20 bytes per encoded request; same hostile-count rationale.
    batch.requests.reserve(std::min<std::size_t>(count, reader.remaining() / 20));
    for (std::uint32_t i = 0; i < count; ++i) batch.requests.push_back(Request::decode(reader));
  }
  if (!reader.at_end()) throw DecodeError("trailing bytes after batch");
  return batch;
}

std::vector<Request> decode_batch(const Bytes& value) {
  return decode_any_batch(value).requests;
}

namespace {

enum class Tag : std::uint8_t {
  kPrepare = 1,
  kPrepareOk = 2,
  kPropose = 3,
  kAccept = 4,
  kHeartbeat = 5,
  kCatchupQuery = 6,
  kCatchupReply = 7,
  kSnapshotOffer = 8,
  kLeaseGrant = 9,
};

struct Encoder {
  ByteWriter& writer;

  void operator()(const Prepare& m) const {
    writer.u8(static_cast<std::uint8_t>(Tag::kPrepare));
    writer.u64(m.view);
    writer.u64(m.from_instance);
  }
  void operator()(const PrepareOk& m) const {
    writer.u8(static_cast<std::uint8_t>(Tag::kPrepareOk));
    writer.u64(m.view);
    writer.u64(m.first_undecided);
    writer.u32(static_cast<std::uint32_t>(m.entries.size()));
    for (const auto& entry : m.entries) {
      writer.u64(entry.instance);
      writer.u64(entry.accepted_view);
      writer.u8(entry.decided ? 1 : 0);
      writer.bytes(entry.value);
    }
  }
  void operator()(const Propose& m) const {
    writer.u8(static_cast<std::uint8_t>(Tag::kPropose));
    writer.u64(m.view);
    writer.u64(m.instance);
    writer.bytes(m.value);
  }
  void operator()(const Accept& m) const {
    writer.u8(static_cast<std::uint8_t>(Tag::kAccept));
    writer.u64(m.view);
    writer.u64(m.instance);
  }
  void operator()(const Heartbeat& m) const {
    writer.u8(static_cast<std::uint8_t>(Tag::kHeartbeat));
    writer.u64(m.view);
    writer.u64(m.first_undecided);
    writer.u64(m.sent_at_ns);
  }
  void operator()(const CatchupQuery& m) const {
    writer.u8(static_cast<std::uint8_t>(Tag::kCatchupQuery));
    writer.u64(m.from_instance);
    writer.u32(static_cast<std::uint32_t>(m.instances.size()));
    for (InstanceId id : m.instances) writer.u64(id);
  }
  void operator()(const CatchupReply& m) const {
    writer.u8(static_cast<std::uint8_t>(Tag::kCatchupReply));
    writer.u32(static_cast<std::uint32_t>(m.decided.size()));
    for (const auto& item : m.decided) {
      writer.u64(item.instance);
      writer.bytes(item.value);
    }
  }
  void operator()(const SnapshotOffer& m) const {
    writer.u8(static_cast<std::uint8_t>(Tag::kSnapshotOffer));
    writer.u64(m.next_instance);
    writer.bytes(m.state);
    writer.bytes(m.reply_cache);
  }
  void operator()(const LeaseGrant& m) const {
    writer.u8(static_cast<std::uint8_t>(Tag::kLeaseGrant));
    writer.u64(m.view);
    writer.u64(m.echo_sent_at_ns);
  }
};

}  // namespace

Bytes encode_message(ReplicaId from, const Message& message) {
  ByteWriter writer(64);
  writer.u32(from);
  std::visit(Encoder{writer}, message);
  return writer.take();
}

WireMessage decode_message(const Bytes& frame) {
  return decode_message(std::span<const std::uint8_t>(frame.data(), frame.size()));
}

WireMessage decode_message(std::span<const std::uint8_t> frame) {
  ByteReader reader(frame);
  WireMessage wire;
  wire.from = reader.u32();
  const auto tag = static_cast<Tag>(reader.u8());
  switch (tag) {
    case Tag::kPrepare: {
      Prepare m;
      m.view = reader.u64();
      m.from_instance = reader.u64();
      wire.message = m;
      break;
    }
    case Tag::kPrepareOk: {
      PrepareOk m;
      m.view = reader.u64();
      m.first_undecided = reader.u64();
      const std::uint32_t count = reader.u32();
      // >= 21 bytes per entry; see decode_batch for the hostile-count rationale.
      m.entries.reserve(std::min<std::size_t>(count, reader.remaining() / 21));
      for (std::uint32_t i = 0; i < count; ++i) {
        PrepareEntry entry;
        entry.instance = reader.u64();
        entry.accepted_view = reader.u64();
        const std::uint8_t decided = reader.u8();
        // The codec is canonical (decode then encode is the identity on
        // accepted inputs); only the two bytes the encoder emits are valid.
        if (decided > 1) throw DecodeError("non-canonical decided flag");
        entry.decided = decided == 1;
        entry.value = reader.bytes();
        m.entries.push_back(std::move(entry));
      }
      wire.message = std::move(m);
      break;
    }
    case Tag::kPropose: {
      Propose m;
      m.view = reader.u64();
      m.instance = reader.u64();
      m.value = reader.bytes();
      wire.message = std::move(m);
      break;
    }
    case Tag::kAccept: {
      Accept m;
      m.view = reader.u64();
      m.instance = reader.u64();
      wire.message = m;
      break;
    }
    case Tag::kHeartbeat: {
      Heartbeat m;
      m.view = reader.u64();
      m.first_undecided = reader.u64();
      m.sent_at_ns = reader.u64();
      wire.message = m;
      break;
    }
    case Tag::kCatchupQuery: {
      CatchupQuery m;
      m.from_instance = reader.u64();
      const std::uint32_t count = reader.u32();
      m.instances.reserve(std::min<std::size_t>(count, reader.remaining() / 8));
      for (std::uint32_t i = 0; i < count; ++i) m.instances.push_back(reader.u64());
      wire.message = std::move(m);
      break;
    }
    case Tag::kCatchupReply: {
      CatchupReply m;
      const std::uint32_t count = reader.u32();
      m.decided.reserve(std::min<std::size_t>(count, reader.remaining() / 12));
      for (std::uint32_t i = 0; i < count; ++i) {
        CatchupDecided item;
        item.instance = reader.u64();
        item.value = reader.bytes();
        m.decided.push_back(std::move(item));
      }
      wire.message = std::move(m);
      break;
    }
    case Tag::kSnapshotOffer: {
      SnapshotOffer m;
      m.next_instance = reader.u64();
      m.state = reader.bytes();
      m.reply_cache = reader.bytes();
      wire.message = std::move(m);
      break;
    }
    case Tag::kLeaseGrant: {
      LeaseGrant m;
      m.view = reader.u64();
      m.echo_sent_at_ns = reader.u64();
      wire.message = m;
      break;
    }
    default:
      throw DecodeError("unknown message tag");
  }
  if (!reader.at_end()) throw DecodeError("trailing bytes after message");
  return wire;
}

const char* message_name(const Message& message) {
  struct Namer {
    const char* operator()(const Prepare&) const { return "Prepare"; }
    const char* operator()(const PrepareOk&) const { return "PrepareOk"; }
    const char* operator()(const Propose&) const { return "Propose"; }
    const char* operator()(const Accept&) const { return "Accept"; }
    const char* operator()(const Heartbeat&) const { return "Heartbeat"; }
    const char* operator()(const CatchupQuery&) const { return "CatchupQuery"; }
    const char* operator()(const CatchupReply&) const { return "CatchupReply"; }
    const char* operator()(const SnapshotOffer&) const { return "SnapshotOffer"; }
    const char* operator()(const LeaseGrant&) const { return "LeaseGrant"; }
  };
  return std::visit(Namer{}, message);
}

}  // namespace mcsmr::paxos
