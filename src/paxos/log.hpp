// The replicated log (§III-C: "its state consists of the replicated log
// containing the information on every known instance of the ordering
// protocol").
//
// Entries live in a deque indexed by InstanceId minus the truncation base,
// so the log supports snapshot-driven truncation without invalidating
// instance ids. The Protocol thread is the only writer (the paper's
// exclusive-write-access rule, §V-C2); other threads never touch the log.
#pragma once

#include <cstdint>
#include <deque>

#include "paxos/types.hpp"

namespace mcsmr::paxos {

/// Paper §III-C names the instance states Unknown (slot exists but no
/// accepted value), Known (value accepted, not yet decided) and Decided.
enum class InstanceState : std::uint8_t { kUnknown = 0, kKnown = 1, kDecided = 2 };

struct LogEntry {
  InstanceState state = InstanceState::kUnknown;

  /// Highest view in which this replica accepted a value.
  ViewId accepted_view = 0;
  Bytes value;

  /// Vote bookkeeping for the learner: which replicas sent Accept for
  /// `vote_view`. Votes from older views are discarded when a newer view's
  /// vote arrives (the newer proposal supersedes).
  ViewId vote_view = 0;
  std::uint64_t vote_mask = 0;

  bool decided() const { return state == InstanceState::kDecided; }
  bool has_value() const { return state != InstanceState::kUnknown; }
  int vote_count() const { return __builtin_popcountll(vote_mask); }
};

class ReplicatedLog {
 public:
  /// First instance id not covered by a snapshot (log start).
  InstanceId base() const { return base_; }

  /// First instance not yet decided (all below are decided or truncated).
  InstanceId first_undecided() const { return first_undecided_; }

  /// One past the highest instance that has an entry.
  InstanceId end() const { return base_ + entries_.size(); }

  /// Access (creating empty entries up to) `instance`. Must be >= base().
  LogEntry& entry(InstanceId instance);

  /// Read-only access; nullptr if truncated or beyond end.
  const LogEntry* find(InstanceId instance) const;

  bool is_decided(InstanceId instance) const {
    const LogEntry* e = find(instance);
    return instance < base_ || (e != nullptr && e->decided());
  }

  /// Mark `instance` decided with `value`; advances first_undecided over
  /// any contiguous decided prefix. Returns true if newly decided.
  bool decide(InstanceId instance, Bytes value);

  /// Drop all entries below `new_base` (everything must be decided or the
  /// caller is installing a snapshot that supersedes them).
  void truncate_before(InstanceId new_base);

  /// Number of in-memory entries (monitoring).
  std::size_t size() const { return entries_.size(); }

 private:
  void advance_first_undecided();

  std::deque<LogEntry> entries_;
  InstanceId base_ = 0;
  InstanceId first_undecided_ = 0;
};

}  // namespace mcsmr::paxos
