// Wire messages of the replication protocol.
//
// The protocol is view-based MultiPaxos (the paper's JPaxos core):
//   Prepare/PrepareOk   — Phase 1, run once per view change over the
//                         whole undecided log suffix;
//   Propose             — Phase 2a, leader assigns a batch to an instance;
//   Accept              — Phase 2b, broadcast by every acceptor to all
//                         replicas so each replica learns decisions from a
//                         majority of Accepts (the leader decides after
//                         its own accept plus quorum-1 others — exactly
//                         the "Phase 2b from another replica" of §VI-D2);
//   Heartbeat           — leader liveness + its first-undecided hint,
//                         which also drives catch-up targeting;
//   CatchupQuery/Reply  — decided-value transfer for lagging replicas;
//   SnapshotOffer       — state transfer when the sender has truncated
//                         its log below the requested instances.
//
// Every message is encoded with the common ByteWriter codec and framed by
// the transport. decode() rejects malformed input with DecodeError.
#pragma once

#include <span>
#include <variant>
#include <vector>

#include "paxos/types.hpp"

namespace mcsmr::paxos {

/// Phase 1a. Sent by a candidate for `view` to all replicas.
struct Prepare {
  ViewId view = 0;
  InstanceId from_instance = 0;  ///< candidate's first undecided slot
};

/// One log entry reported in a PrepareOk.
struct PrepareEntry {
  InstanceId instance = 0;
  ViewId accepted_view = 0;
  bool decided = false;
  Bytes value;
};

/// Phase 1b. Acceptor's log suffix from `from_instance` upward.
struct PrepareOk {
  ViewId view = 0;
  InstanceId first_undecided = 0;
  std::vector<PrepareEntry> entries;
};

/// Phase 2a. Leader proposes `value` (an encoded batch) for `instance`.
struct Propose {
  ViewId view = 0;
  InstanceId instance = 0;
  Bytes value;
};

/// Phase 2b. Acceptor accepted (view, instance); broadcast to all.
struct Accept {
  ViewId view = 0;
  InstanceId instance = 0;
};

/// Leader liveness beacon; `first_undecided` lets followers detect lag.
/// `sent_at_ns` is the sender's local clock at send time; lease-mode
/// followers echo it back in their LeaseGrant so the leader can bound the
/// grant's validity entirely in its own clock (durations, not absolute
/// timestamps — constant clock offsets cancel). Zero under read_path=
/// consensus, where no grants flow.
struct Heartbeat {
  ViewId view = 0;
  InstanceId first_undecided = 0;
  std::uint64_t sent_at_ns = 0;
};

/// Request decided values for explicitly listed instances.
struct CatchupQuery {
  InstanceId from_instance = 0;
  std::vector<InstanceId> instances;
};

/// Decided (instance, value) pairs in response to a CatchupQuery.
struct CatchupDecided {
  InstanceId instance = 0;
  Bytes value;
};
struct CatchupReply {
  std::vector<CatchupDecided> decided;
};

/// State transfer: service snapshot covering everything < next_instance.
struct SnapshotOffer {
  InstanceId next_instance = 0;  ///< first instance NOT covered
  Bytes state;                   ///< Service::snapshot() payload
  Bytes reply_cache;             ///< serialized reply cache (at-most-once)
};

/// Follower -> leader: "I promise not to elect anyone else for
/// lease_duration_ns on MY clock, measured from when I received the
/// heartbeat whose send stamp I echo here." The leader converts the echo
/// into a deadline on its own clock (echo + duration - drift margin) and
/// holds the lease while a quorum of such deadlines is in the future.
/// Only sent under read_path=lease.
struct LeaseGrant {
  ViewId view = 0;
  std::uint64_t echo_sent_at_ns = 0;  ///< Heartbeat::sent_at_ns echoed back
};

using Message = std::variant<Prepare, PrepareOk, Propose, Accept, Heartbeat, CatchupQuery,
                             CatchupReply, SnapshotOffer, LeaseGrant>;

/// Encode message with sender id (receiver needs it for vote counting).
Bytes encode_message(ReplicaId from, const Message& message);

/// Decoded wire message.
struct WireMessage {
  ReplicaId from = 0;
  Message message;
};
/// Throws DecodeError on malformed/unknown input.
WireMessage decode_message(const Bytes& frame);
/// Span variant for callers that strip an outer header (partition tags).
WireMessage decode_message(std::span<const std::uint8_t> frame);

/// Human-readable tag for logging/debugging.
const char* message_name(const Message& message);

}  // namespace mcsmr::paxos
