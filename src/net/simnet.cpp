#include "net/simnet.hpp"

#include <algorithm>
#include <chrono>

#include "common/clock.hpp"

namespace mcsmr::net {

SimNetwork::SimNetwork(SimNetParams params)
    : params_(params), nodes_(params.max_nodes), fault_rng_(params.seed) {
  delivery_thread_ = metrics::NamedThread("SimNetDelivery", [this] { delivery_loop(); });
}

SimNetwork::~SimNetwork() { shutdown(); }

NodeId SimNetwork::add_node(std::string name, bool unlimited_nic) {
  std::lock_guard<std::mutex> guard(add_node_mu_);
  const std::size_t index = node_count_.load(std::memory_order_relaxed);
  if (index >= nodes_.size()) throw std::runtime_error("SimNetwork: max_nodes exceeded");
  auto node = std::make_unique<Node>();
  node->name = std::move(name);
  node->unlimited_nic = unlimited_nic;
  nodes_[index] = std::move(node);
  node_count_.store(index + 1, std::memory_order_release);
  return static_cast<NodeId>(index);
}

SimNetwork::Node& SimNetwork::node_at(NodeId id) {
  if (id >= node_count_.load(std::memory_order_acquire) || !nodes_[id]) {
    throw std::out_of_range("SimNetwork: unknown node " + std::to_string(id));
  }
  return *nodes_[id];
}

std::shared_ptr<SimNetwork::Inbox> SimNetwork::inbox(NodeId node, Channel channel) {
  std::lock_guard<std::mutex> guard(inbox_mu_);
  auto& slot = inboxes_[{node, channel}];
  if (!slot) {
    slot = std::make_shared<Inbox>(params_.inbox_capacity, "simnet-inbox");
  }
  return slot;
}

std::uint64_t SimNetwork::reserve_nic(Node& node, bool out, std::uint64_t packets,
                                      std::uint64_t bytes, std::uint64_t earliest_ns) {
  std::uint64_t cost_ns = 0;
  if (!node.unlimited_nic) {
    if (params_.node_pps > 0) {
      cost_ns = std::max(cost_ns, static_cast<std::uint64_t>(
                                      static_cast<double>(packets) / params_.node_pps * 1e9));
    }
    if (params_.node_bandwidth_bps > 0) {
      cost_ns = std::max(cost_ns,
                         static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                                    params_.node_bandwidth_bps * 1e9));
    }
  }
  std::lock_guard<std::mutex> guard(node.nic_mu);
  std::uint64_t& busy_until = out ? node.nic_out_busy_until_ns : node.nic_in_busy_until_ns;
  const std::uint64_t start = std::max(earliest_ns, busy_until);
  busy_until = start + cost_ns;
  return busy_until;
}

bool SimNetwork::send(NodeId from, NodeId to, Channel channel, Bytes payload) {
  {
    std::lock_guard<std::mutex> guard(flight_mu_);
    if (stopping_) return false;
  }

  const std::uint64_t now = mono_ns();
  const std::uint64_t bytes = payload.size();
  const std::uint64_t packets = metrics::packets_for_bytes(bytes);

  // Fault lookup (drop / duplicate / delay).
  FaultPlan plan;
  {
    std::lock_guard<std::mutex> guard(fault_mu_);
    auto it = faults_.find({from, to});
    if (it != faults_.end()) plan = it->second;
  }

  Node& src = node_at(from);
  Node& dst = node_at(to);
  src.counters.on_send(bytes);

  int copies = 1;
  {
    std::lock_guard<std::mutex> guard(fault_mu_);
    if (plan.drop_prob > 0 && fault_rng_.chance(plan.drop_prob)) copies = 0;
    if (copies == 1 && plan.dup_prob > 0 && fault_rng_.chance(plan.dup_prob)) copies = 2;
  }
  if (copies == 0) return true;  // silently lost, as on a real network

  for (int copy = 0; copy < copies; ++copy) {
    // Egress: the sender's NIC must emit `packets` frames.
    const std::uint64_t egress_done = reserve_nic(src, /*out=*/true, packets, bytes, now);
    // Propagation.
    std::uint64_t arrive = egress_done + params_.one_way_ns + plan.extra_delay_ns;
    if (plan.jitter_ns > 0) {
      std::lock_guard<std::mutex> guard(fault_mu_);
      arrive += fault_rng_.uniform(plan.jitter_ns);
    }
    // Ingress: the receiver's NIC must absorb the frames before delivery.
    const std::uint64_t deliver_at = reserve_nic(dst, /*out=*/false, packets, bytes, arrive);
    dst.counters.on_recv(bytes);

    SimMessage message{from, channel, payload, now};
    {
      std::lock_guard<std::mutex> guard(flight_mu_);
      if (stopping_) return false;
      heap_.push_back(InFlight{deliver_at, next_seq_++, to, std::move(message)});
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
    flight_cv_.notify_one();
  }
  return true;
}

std::optional<SimMessage> SimNetwork::recv(NodeId node, Channel channel) {
  return inbox(node, channel)->pop();
}

std::optional<SimMessage> SimNetwork::recv_for(NodeId node, Channel channel,
                                               std::uint64_t timeout_ns) {
  return inbox(node, channel)->pop_for(timeout_ns);
}

void SimNetwork::close_inbox(NodeId node, Channel channel) {
  inbox(node, channel)->close();
}

void SimNetwork::reset_inbox(NodeId node, Channel channel) {
  std::lock_guard<std::mutex> guard(inbox_mu_);
  inboxes_[{node, channel}] =
      std::make_shared<Inbox>(params_.inbox_capacity, "simnet-inbox");
}

bool SimNetwork::inject(NodeId node, Channel channel, SimMessage message) {
  return inbox(node, channel)->push(std::move(message));
}

void SimNetwork::set_fault(NodeId from, NodeId to, FaultPlan plan) {
  std::lock_guard<std::mutex> guard(fault_mu_);
  faults_[{from, to}] = plan;
}

void SimNetwork::set_partition(NodeId a, NodeId b, bool cut) {
  FaultPlan plan;
  plan.drop_prob = cut ? 1.0 : 0.0;
  set_fault(a, b, plan);
  set_fault(b, a, plan);
}

std::uint64_t SimNetwork::ping_rtt_ns(NodeId a, NodeId b) {
  // A 64-byte ICMP-sized probe: one frame each way, delayed behind each
  // node's pending NIC queue exactly like real traffic (ping bypasses the
  // JVM/TCP stack in the paper too — it measures the kernel packet path).
  // The probe itself peeks rather than reserves: its own four frames are
  // negligible against the budget and must not perturb later probes.
  const std::uint64_t now = mono_ns();
  const auto queue_wait = [&](Node& node, bool out, std::uint64_t at) {
    std::lock_guard<std::mutex> guard(node.nic_mu);
    return std::max(at, out ? node.nic_out_busy_until_ns : node.nic_in_busy_until_ns);
  };
  Node& na = node_at(a);
  Node& nb = node_at(b);
  const std::uint64_t out = queue_wait(na, true, now) + params_.one_way_ns;
  const std::uint64_t at_b = queue_wait(nb, false, out);
  const std::uint64_t back = queue_wait(nb, true, at_b) + params_.one_way_ns;
  const std::uint64_t done = queue_wait(na, false, back);
  return done - now;
}

metrics::NetCounters& SimNetwork::counters(NodeId node) { return node_at(node).counters; }

void SimNetwork::shutdown() {
  {
    std::lock_guard<std::mutex> guard(flight_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  flight_cv_.notify_all();
  delivery_thread_.join();
  std::lock_guard<std::mutex> guard(inbox_mu_);
  for (auto& [key, box] : inboxes_) box->close();
}

void SimNetwork::delivery_loop() {
  std::unique_lock<std::mutex> lock(flight_mu_);
  for (;;) {
    if (stopping_ && heap_.empty()) return;
    if (heap_.empty()) {
      flight_cv_.wait(lock, [this] { return stopping_ || !heap_.empty(); });
      continue;
    }
    const std::uint64_t now = mono_ns();
    const std::uint64_t due = heap_.front().deliver_at_ns;
    if (due > now && !stopping_) {
      flight_cv_.wait_for(lock, std::chrono::nanoseconds(due - now));
      continue;
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    InFlight item = std::move(heap_.back());
    heap_.pop_back();
    lock.unlock();
    // try_push: a full inbox behaves like a NIC ring overflow — the frame
    // is dropped and end-to-end recovery (retransmission) kicks in.
    inbox(item.to, item.message.channel)->try_push(std::move(item.message));
    lock.lock();
  }
}

}  // namespace mcsmr::net
