#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/clock.hpp"
#include "net/frame.hpp"

namespace mcsmr::net {

namespace {
constexpr std::uint32_t kMaxFrameBytesForTcp = kMaxFrameBytes;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpStream> TcpStream::connect(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return std::nullopt;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return std::nullopt;

  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return std::nullopt;
  }
  TcpStream stream(std::move(fd));
  stream.set_nodelay(true);
  return stream;
}

std::optional<TcpStream> TcpStream::connect_retry(const std::string& host, std::uint16_t port,
                                                  std::uint64_t deadline_ns) {
  for (;;) {
    if (auto stream = connect(host, port)) return stream;
    if (mono_ns() >= deadline_ns) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void TcpStream::set_nodelay(bool on) {
  const int flag = on ? 1 : 0;
  ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &flag, sizeof flag);
}

bool TcpStream::write_all(const std::uint8_t* data, std::size_t len) {
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::send(fd_.get(), data + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpStream::read_exact(std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_.get(), data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpStream::send_frame(std::span<const std::uint8_t> payload) {
  std::uint8_t header[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  // Two writes instead of a copy; TCP_NODELAY batches are unaffected since
  // the kernel coalesces back-to-back sends in one sndbuf.
  if (!write_all(header, sizeof header)) return false;
  if (len > 0 && !write_all(payload.data(), payload.size())) return false;
  return true;
}

std::optional<Bytes> TcpStream::recv_frame() {
  std::uint8_t header[4];
  if (!read_exact(header, sizeof header)) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (len > kMaxFrameBytesForTcp) return std::nullopt;
  Bytes payload(len);
  if (len > 0 && !read_exact(payload.data(), len)) return std::nullopt;
  return payload;
}

void TcpStream::shutdown() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

std::optional<TcpListener> TcpListener::bind(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return std::nullopt;

  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return std::nullopt;
  }
  if (::listen(fd.get(), 1024) != 0) return std::nullopt;

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return std::nullopt;
  }

  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<TcpStream> TcpListener::accept() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  TcpStream stream{Fd(fd)};
  stream.set_nodelay(true);
  return stream;
}

void TcpListener::close() {
  // shutdown() first: closing a listening fd does not reliably wake a
  // thread blocked in accept(); shutdown does (accept fails with EINVAL).
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  fd_.reset();
}

}  // namespace mcsmr::net
