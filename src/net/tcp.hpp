// Blocking TCP primitives (RAII sockets, framed send/recv).
//
// Used by the ReplicaIO module (§V-B: blocking I/O, two threads per peer
// socket) and by the TCP client library. The non-blocking epoll side used
// by ClientIO lives in event_loop.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace mcsmr::net {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// A connected TCP stream with blocking framed I/O.
///
/// send_frame/recv_frame are thread-compatible per direction: one thread
/// may read while another writes (exactly the ReplicaIO reader/sender
/// pairing), but two concurrent writers need external serialization (the
/// SendQueue provides it).
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Fd fd) : fd_(std::move(fd)) {}

  static std::optional<TcpStream> connect(const std::string& host, std::uint16_t port);
  /// Retry connect until `deadline_ns` (mono clock); replicas use this at
  /// cluster start when peers come up in arbitrary order.
  static std::optional<TcpStream> connect_retry(const std::string& host, std::uint16_t port,
                                                std::uint64_t deadline_ns);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// Write one length-prefixed frame. Returns false on any error (the
  /// connection is then unusable).
  bool send_frame(std::span<const std::uint8_t> payload);

  /// Read one length-prefixed frame. Returns nullopt on EOF/error.
  std::optional<Bytes> recv_frame();

  /// Shut down both directions, waking any blocked reader.
  void shutdown();

  void set_nodelay(bool on);

 private:
  bool write_all(const std::uint8_t* data, std::size_t len);
  bool read_exact(std::uint8_t* data, std::size_t len);

  Fd fd_;
};

/// Listening socket.
class TcpListener {
 public:
  /// Bind to 127.0.0.1:`port` (port 0 picks a free port; see port()).
  static std::optional<TcpListener> bind(std::uint16_t port);

  std::optional<TcpStream> accept();
  std::uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }
  /// Close the listening socket, causing a blocked accept() to fail.
  void close();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

}  // namespace mcsmr::net
