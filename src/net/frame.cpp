#include "net/frame.hpp"

#include <cstring>

namespace mcsmr::net {

Bytes frame_message(std::span<const std::uint8_t> payload) {
  Bytes frame;
  frame.reserve(payload.size() + 4);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

bool FrameParser::feed(std::span<const std::uint8_t> chunk,
                       const std::function<void(Bytes)>& on_frame) {
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  std::size_t offset = 0;
  while (buf_.size() - offset >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(buf_[offset + static_cast<std::size_t>(i)]) << (8 * i);
    }
    if (len > kMaxFrameBytes) return false;
    if (buf_.size() - offset - 4 < len) break;
    Bytes payload(buf_.begin() + static_cast<std::ptrdiff_t>(offset + 4),
                  buf_.begin() + static_cast<std::ptrdiff_t>(offset + 4 + len));
    offset += 4 + len;
    on_frame(std::move(payload));
  }
  if (offset > 0) buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(offset));
  return true;
}

}  // namespace mcsmr::net
