// SimNet — an in-process network with a per-node NIC model.
//
// The paper's evaluation (§VI-D) localizes the throughput ceiling to the
// *network subsystem of the leader node*: the Linux 2.6.26 kernel serves
// all NIC interrupts from one core and saturates at ≈150K packets/s, which
// (a) caps throughput regardless of cores, (b) inflates ping RTT to the
// leader from 0.06 ms to ≈2.5 ms while leaving other links untouched
// (Table II), and (c) makes batch size BSZ=1300 the efficiency knee
// (Table III). We reproduce that mechanism with a queueing model:
//
//   * every node has one NIC "processor" with a packets/s budget and a
//     bytes/s bandwidth; both ingress and egress packets consume it
//     (matching the single-interrupt-queue explanation in the paper);
//   * a message of B bytes costs ceil(B/MSS) packets (Ethernet frames);
//   * the NIC is modeled as a FIFO reservation: each message occupies the
//     NIC from `busy_until` for its cost, so queueing delay — and thus
//     observed RTT — grows exactly when a node's packet rate approaches
//     its budget;
//   * a delivery thread releases messages into destination inboxes at
//     their computed arrival times (real-time, so the real threaded
//     replicas experience the modeled latency).
//
// SimNet also provides per-directed-link fault injection (drop, duplicate,
// delay, jitter/reordering, partition) used by the Paxos and SMR property
// tests, and a ping probe that measures RTT through the same NIC
// reservations (regenerating Table II).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/queue.hpp"
#include "common/rand.hpp"
#include "metrics/net_counters.hpp"
#include "metrics/thread_stats.hpp"

namespace mcsmr::net {

using NodeId = std::uint32_t;
using Channel = std::uint32_t;

/// A message as seen by the receiving node.
struct SimMessage {
  NodeId from = 0;
  Channel channel = 0;
  Bytes payload;
  std::uint64_t sent_at_ns = 0;
};

struct SimNetParams {
  std::uint64_t one_way_ns = 30'000;  ///< base one-way latency (idle RTT 0.06 ms, Table II)
  double node_pps = 150'000;          ///< NIC packet budget per node; 0 = unlimited
  double node_bandwidth_bps = 114e6;  ///< NIC bandwidth bytes/s (114 MB/s GbE); 0 = unlimited
  std::uint64_t seed = 1;             ///< fault-injection RNG seed
  std::size_t inbox_capacity = 1 << 16;
  std::size_t max_nodes = 8192;       ///< node slots are preallocated (see add_node)
};

/// Per-directed-link fault plan (property tests).
struct FaultPlan {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  std::uint64_t extra_delay_ns = 0;
  std::uint64_t jitter_ns = 0;  ///< uniform [0, jitter) extra delay => reordering
};

class SimNetwork {
 public:
  explicit SimNetwork(SimNetParams params = {});
  ~SimNetwork();
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Add a node. `unlimited_nic` exempts it from the packet budget (used
  /// for client machines, which the paper shows are far from saturation).
  /// Thread-safe and usable while traffic flows (slots are preallocated;
  /// a new node is only addressed by peers after it has messaged them,
  /// which orders the initialization). Throws when max_nodes is exceeded.
  NodeId add_node(std::string name, bool unlimited_nic = false);

  std::size_t node_count() const { return node_count_.load(std::memory_order_acquire); }

  /// Send `payload` from `from` to `to:channel`. Returns false after
  /// shutdown. A dropped (fault-injected) message still returns true —
  /// the sender cannot tell, as on a real network.
  bool send(NodeId from, NodeId to, Channel channel, Bytes payload);

  /// Blocking receive; nullopt when the inbox is closed.
  std::optional<SimMessage> recv(NodeId node, Channel channel);
  /// Blocking receive with timeout; nullopt on timeout or close.
  std::optional<SimMessage> recv_for(NodeId node, Channel channel, std::uint64_t timeout_ns);

  /// Close one inbox, waking blocked receivers (used at module shutdown).
  void close_inbox(NodeId node, Channel channel);

  /// Replace a (possibly closed) inbox with a fresh empty one, so a
  /// crashed node can be restarted in place (close() is permanent on the
  /// underlying queue). Messages still queued are dropped — they died
  /// with the "process". Callers must ensure no thread of the old
  /// incarnation still receives on the channel.
  void reset_inbox(NodeId node, Channel channel);

  /// Local hand-off: place a message directly in (node, channel)'s inbox
  /// without traversing the NIC model. This is how a same-process module
  /// (e.g. the ServiceManager) posts work to a ClientIO thread's message
  /// queue — the paper's reply hand-off (Fig 3), which is not network
  /// traffic. Returns false if the inbox is full or closed.
  bool inject(NodeId node, Channel channel, SimMessage message);

  /// Fault injection on the directed link from->to.
  void set_fault(NodeId from, NodeId to, FaultPlan plan);
  /// Symmetric partition control: cut or heal both directions.
  void set_partition(NodeId a, NodeId b, bool cut);

  /// RTT of a 64-byte probe a->b->a measured through the same NIC
  /// reservations real traffic uses (Table II's `ping`). Does not sleep.
  std::uint64_t ping_rtt_ns(NodeId a, NodeId b);

  /// NIC counters for Table III (packets & bytes, both directions).
  metrics::NetCounters& counters(NodeId node);

  /// Close all inboxes and stop the delivery thread.
  void shutdown();

 private:
  struct Node {
    std::string name;
    bool unlimited_nic = false;
    // Full-duplex NIC: independent budgets per direction (the paper's
    // leader sustains ~150K pkts/s out and ~145K in simultaneously).
    std::mutex nic_mu;
    std::uint64_t nic_out_busy_until_ns = 0;
    std::uint64_t nic_in_busy_until_ns = 0;
    metrics::NetCounters counters;
  };

  struct InFlight {
    std::uint64_t deliver_at_ns;
    std::uint64_t seq;  // tie-break for deterministic ordering
    NodeId to;
    SimMessage message;
    bool operator>(const InFlight& other) const {
      return deliver_at_ns != other.deliver_at_ns ? deliver_at_ns > other.deliver_at_ns
                                                  : seq > other.seq;
    }
  };

  using Inbox = BoundedBlockingQueue<SimMessage>;

  /// Reserve NIC time for `packets`/`bytes` on `node`'s egress (out=true)
  /// or ingress path, no earlier than `earliest_ns`; returns when the NIC
  /// finishes handling the message.
  std::uint64_t reserve_nic(Node& node, bool out, std::uint64_t packets, std::uint64_t bytes,
                            std::uint64_t earliest_ns);

  std::shared_ptr<Inbox> inbox(NodeId node, Channel channel);
  void delivery_loop();

  Node& node_at(NodeId id);

  SimNetParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;  // preallocated slots
  std::atomic<std::size_t> node_count_{0};
  std::mutex add_node_mu_;

  std::mutex inbox_mu_;
  std::map<std::pair<NodeId, Channel>, std::shared_ptr<Inbox>> inboxes_;

  std::mutex fault_mu_;
  std::map<std::pair<NodeId, NodeId>, FaultPlan> faults_;
  Rng fault_rng_;

  std::mutex flight_mu_;
  std::condition_variable flight_cv_;
  // Min-heap on deliver_at (std::greater via operator>).
  std::vector<InFlight> heap_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;

  metrics::NamedThread delivery_thread_;
};

}  // namespace mcsmr::net
