#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>

namespace mcsmr::net {

EventLoop::EventLoop()
    : epoll_fd_(::epoll_create1(0)), wake_fd_(::eventfd(0, EFD_NONBLOCK)) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev);
}

EventLoop::~EventLoop() = default;

bool EventLoop::add(int fd, std::uint32_t events, FdCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  callbacks_[fd] = std::move(callback);
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] auto ignored = ::write(wake_fd_.get(), &one, sizeof one);
}

void EventLoop::stop() {
  stop_requested_ = true;
  wake();
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> guard(task_mu_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::drain_tasks() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> guard(task_mu_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) task();
}

void EventLoop::run() {
  running_ = true;
  std::array<epoll_event, 128> events{};
  while (!stop_requested_) {
    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_.get()) {
        std::uint64_t drain;
        while (::read(wake_fd_.get(), &drain, sizeof drain) > 0) {
        }
        continue;
      }
      // The callback may remove this or other fds; re-check membership.
      auto it = callbacks_.find(fd);
      if (it != callbacks_.end()) it->second(events[static_cast<std::size_t>(i)].events);
    }
    drain_tasks();
  }
  drain_tasks();
  running_ = false;
}

}  // namespace mcsmr::net
