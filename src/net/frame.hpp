// Wire framing: every message is a u32 little-endian length prefix followed
// by that many payload bytes.
//
// FrameParser is the incremental decoder used by non-blocking readers
// (ClientIO's epoll loop): feed() arbitrary chunks as they arrive from the
// socket and complete frames are surfaced in order. A maximum frame size
// guards against corrupt/hostile length prefixes.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "common/bytes.hpp"

namespace mcsmr::net {

constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

/// Wrap a payload in a length-prefixed frame.
Bytes frame_message(std::span<const std::uint8_t> payload);

/// Incremental length-prefix decoder.
class FrameParser {
 public:
  /// Feed a chunk; invokes `on_frame` once per completed frame, in order.
  /// Returns false (and stops) if a frame length exceeds kMaxFrameBytes —
  /// the connection should be dropped.
  bool feed(std::span<const std::uint8_t> chunk,
            const std::function<void(Bytes)>& on_frame);

  /// Bytes buffered waiting for the rest of a frame.
  std::size_t pending_bytes() const { return buf_.size(); }

 private:
  Bytes buf_;
};

}  // namespace mcsmr::net
