// epoll-based event loop, one instance per ClientIO thread (§V-A).
//
// The paper's ClientIO module is event-driven over non-blocking sockets
// (Java NIO there, epoll here) with a static pool of loops and round-robin
// connection assignment. Cross-thread work injection — the ServiceManager
// handing a reply to the ClientIO thread that owns the client's connection —
// is done with post(): an eventfd-woken task queue, which is exactly the
// "message queue of the ClientIO thread" in Fig 3.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/tcp.hpp"

namespace mcsmr::net {

class EventLoop {
 public:
  /// Callback receives the epoll event mask (EPOLLIN/EPOLLOUT/...).
  using FdCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for `events`. The callback runs on the loop thread.
  bool add(int fd, std::uint32_t events, FdCallback callback);
  /// Change the interest set of a registered fd.
  bool modify(int fd, std::uint32_t events);
  /// Deregister; safe to call from within a callback for the same fd.
  void remove(int fd);

  /// Run until stop(). Must be called from exactly one thread.
  void run();

  /// Thread-safe: ask the loop to exit.
  void stop();

  /// Thread-safe: run `task` on the loop thread soon. This is the reply
  /// hand-off path from the ServiceManager.
  void post(std::function<void()> task);

  bool running() const { return running_; }

 private:
  void wake();
  void drain_tasks();

  Fd epoll_fd_;
  Fd wake_fd_;
  std::unordered_map<int, FdCallback> callbacks_;
  std::mutex task_mu_;
  std::vector<std::function<void()>> tasks_;
  volatile bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace mcsmr::net
