// Calibration: extract real per-stage CPU demands from a live run of the
// actual threaded implementation on this host.
//
// A short SimNet experiment (real replicas, real swarm) is run while the
// per-thread CPU accounting records each stage's busy time; dividing by
// the number of completed requests yields the ns-per-request demand of
// every stage, which can then seed SmrCostProfile so the core-sweep model
// extrapolates *this machine's* costs rather than the built-in paper-shape
// defaults. Benches accept `--calibrate` to use this.
#pragma once

#include "sim/model.hpp"

namespace mcsmr::sim {

struct CalibrationResult {
  SmrCostProfile profile;
  double measured_throughput_rps = 0;
  std::uint64_t requests_completed = 0;
  bool ok = false;
};

/// Run a `duration_ns` load experiment on a 3-replica SimNet cluster and
/// derive stage demands from the leader's thread CPU accounting.
CalibrationResult calibrate_smr(std::uint64_t duration_ns = 2'000'000'000);

}  // namespace mcsmr::sim
