#include "sim/model.hpp"

#include <algorithm>
#include <cmath>

namespace mcsmr::sim {

namespace {
constexpr double kMss = 1448.0;

double packets_for(double bytes) { return std::max(1.0, std::ceil(bytes / kMss)); }
}  // namespace

double ScalingCurve::at(double cores) const {
  if (points.empty() || cores <= points.front().first) return points.front().second;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (cores <= points[i].first) {
      const auto& [x0, y0] = points[i - 1];
      const auto& [x1, y1] = points[i];
      return y0 + (y1 - y0) * (cores - x0) / (x1 - x0);
    }
  }
  // Continue the final slope beyond the last calibration point.
  const auto& [x0, y0] = points[points.size() - 2];
  const auto& [x1, y1] = points.back();
  const double slope = (y1 - y0) / (x1 - x0);
  return y1 + slope * (cores - x1);
}

double requests_per_batch(double batch_bytes, double request_bytes) {
  const double encoded = request_bytes + 24;  // client_id + seq + length prefix
  return std::max(1.0, std::floor((batch_bytes - 4) / encoded));
}

ModelOutput SmrModel::evaluate(const ModelInput& input) const {
  ModelOutput out;
  const double b = requests_per_batch(input.batch_bytes, input.request_bytes);
  const int peers = input.n - 1;

  // Per-request demand of each stage (ns).
  const double d_cio = profile_.clientio_ns;
  const double d_bat = profile_.batcher_ns;
  const double d_prot =
      (profile_.protocol_batch_ns + peers * 2.0 * profile_.protocol_msg_ns) / b;
  const double d_sm = profile_.replica_exec_ns;
  const double d_snd = profile_.replicaio_snd_batch_ns / b;  // per peer thread
  const double d_rcv = profile_.replicaio_rcv_msg_ns / b;    // per peer thread
  const double total_demand_ns =
      d_cio + d_bat + d_prot + d_sm + peers * (d_snd + d_rcv);

  // --- Bound (1): CPU-region scaling curve --------------------------------
  const double x1 = 1e9 / (total_demand_ns * profile_.single_core_tax);
  const double x_curve = x1 * curve_.at(input.cores);

  // --- Bound (2): per-thread serial limits --------------------------------
  const double x_clientio = input.clientio_threads * 1e9 / d_cio;
  const double x_batcher = 1e9 / d_bat;
  const double x_protocol = 1e9 / d_prot;
  const double x_replica = 1e9 / d_sm;
  const double x_snd = 1e9 / d_snd;
  const double x_rcv = 1e9 / d_rcv;

  // --- Bound (3): leader NIC packet budget ---------------------------------
  // Out: one reply/packet per request + the batch to each follower.
  out.packets_out_per_req = 1.0 + peers * packets_for(input.batch_bytes) / b;
  // In: one request/packet + one Accept per batch from each follower.
  out.packets_in_per_req = 1.0 + peers * 1.0 / b;
  double nic_pps = input.nic_pps;
  if (input.clientio_threads > 8) {
    nic_pps *= std::max(0.3, 1.0 - input.nic_io_thread_penalty *
                                       (input.clientio_threads - 8));
  }
  const double x_nic =
      nic_pps / std::max(out.packets_out_per_req, out.packets_in_per_req);

  // --- Bound (4): closed-loop client population ----------------------------
  const double base_latency_ns = input.rtt_ns + total_demand_ns;
  const double x_clients = input.clients * 1e9 / base_latency_ns;

  struct Bound {
    double x;
    const char* name;
  };
  const Bound bounds[] = {
      {x_curve, "cpu"},           {x_clientio, "ClientIO pool"},
      {x_batcher, "Batcher"},     {x_protocol, "Protocol"},
      {x_replica, "Replica"},     {x_snd, "ReplicaIOSnd"},
      {x_rcv, "ReplicaIORcv"},    {x_nic, "leader NIC pps"},
      {x_clients, "client population"},
  };
  const Bound* binding = &bounds[0];
  for (const auto& bound : bounds) {
    if (bound.x < binding->x) binding = &bound;
  }

  out.throughput_rps = binding->x;
  out.bottleneck = binding->name;
  out.speedup = out.throughput_rps / x1;

  // CPU utilisation: per-request demand shrinks as cores stop being shared
  // (fewer context switches, better caching — the paper's Fig 5a/7
  // observation that CPU grows ~3x for a ~7x speedup).
  const double tax =
      1.0 + (profile_.single_core_tax - 1.0) / std::max(1.0, static_cast<double>(input.cores));
  const double demand_now_ns = total_demand_ns * tax;
  out.total_cpu_cores = out.throughput_rps * demand_now_ns / 1e9;

  // Per-thread busy fractions at the solution.
  const double x = out.throughput_rps;
  for (int t = 0; t < input.clientio_threads; ++t) {
    out.thread_busy_frac["ClientIO-" + std::to_string(t)] =
        x * d_cio / input.clientio_threads / 1e9;
  }
  out.thread_busy_frac["Batcher"] = x * d_bat / 1e9;
  out.thread_busy_frac["Protocol"] = x * d_prot / 1e9;
  out.thread_busy_frac["Replica"] = x * d_sm / 1e9;
  for (int p = 0; p < peers; ++p) {
    out.thread_busy_frac["ReplicaIOSnd-" + std::to_string(p)] = x * d_snd / 1e9;
    out.thread_busy_frac["ReplicaIORcv-" + std::to_string(p)] = x * d_rcv / 1e9;
  }

  // Contention: the architecture shares no locks beyond queue hand-offs;
  // blocked time stays a small, load-proportional sliver (paper: <20% of
  // one core in aggregate).
  const double load = std::min(1.0, x / std::max(x_nic, x_curve));
  out.total_blocked_cores = 0.18 * load;

  // Instance latency: RTT plus NIC queueing as the budget saturates
  // (M/M/1-style inflation, capped by the pipelining window).
  const double nic_load =
      std::min(0.995, x * std::max(out.packets_out_per_req, out.packets_in_per_req) / nic_pps);
  const double queueing = input.rtt_ns * nic_load / std::max(0.05, 1.0 - nic_load);
  out.instance_latency_ns = input.rtt_ns + std::min(queueing, 40.0 * input.rtt_ns);
  return out;
}

ModelOutput ZkModel::evaluate(const ModelInput& input) const {
  ModelOutput out;
  const int peers = input.n - 1;

  // All costs are per request (no batching in the baseline).
  const double lock_demand =
      profile_.lock_prep_ns + profile_.lock_propose_ns +
      peers * profile_.lock_ack_ns + profile_.lock_commit_ns;
  const double off_lock = profile_.clientio_ns + profile_.sync_ns +
                          profile_.off_lock_commit_ns;
  const double total_demand_ns = lock_demand + off_lock;

  // Threads that actually contend for the global lock.
  const double lock_users = 3.0 + peers;  // prep, sync, commit + learner handlers
  const double contenders =
      std::min(static_cast<double>(input.cores), lock_users);
  // Cache-line bouncing inflates the lock's service time as more cores run
  // contenders truly in parallel — this is the collapse mechanism.
  const double lock_eff_ns =
      lock_demand * (1.0 + profile_.lock_bounce_per_core * std::max(0.0, contenders - 1.0) *
                               std::max(1.0, input.cores / 4.0));

  const double x1 = 1e9 / (total_demand_ns * profile_.single_core_tax);
  // CPU region: modest near-linear scaling while cores are scarce.
  const double x_cpu = x1 * std::min(static_cast<double>(input.cores), lock_users) * 1.45;
  const double x_lock = 1e9 / lock_eff_ns;
  // Per-request proposals, but Zab coalesces protocol messages on its
  // persistent TCP streams, so the per-request packet cost stays modest —
  // the paper's ZooKeeper never reaches the NIC limit.
  const double zk_pkts_per_req = 1.0 + peers * 0.25;
  const double x_nic = input.nic_pps / zk_pkts_per_req;
  const double x_clients =
      input.clients * 1e9 / (input.rtt_ns + total_demand_ns);

  struct Bound {
    double x;
    const char* name;
  };
  const Bound bounds[] = {{x_cpu, "cpu"},
                          {x_lock, "global leader lock"},
                          {x_nic, "leader NIC pps"},
                          {x_clients, "client population"}};
  const Bound* binding = &bounds[0];
  for (const auto& bound : bounds) {
    if (bound.x < binding->x) binding = &bound;
  }

  out.throughput_rps = binding->x;
  out.bottleneck = binding->name;
  out.speedup = out.throughput_rps / x1;

  const double tax = 1.0 + (profile_.single_core_tax - 1.0) /
                               std::max(1.0, static_cast<double>(input.cores));
  // Spinning/handoff on the contended lock burns CPU beyond useful work.
  const double lock_waste = (lock_eff_ns - lock_demand);
  out.total_cpu_cores =
      out.throughput_rps * (total_demand_ns * tax + lock_waste * contenders * 0.5) / 1e9;

  // Aggregate blocked time: each of the other contenders waits while the
  // lock is held; near saturation this exceeds 100% of one core (Fig 13b).
  const double rho = std::min(0.98, out.throughput_rps * lock_eff_ns / 1e9);
  out.total_blocked_cores = rho * (contenders - 1.0) * 0.45;

  // Per-thread picture (Fig 1b / Fig 14): CommitProcessor and the
  // LearnerHandlers live on the lock; busy+blocked ~ saturated.
  const double x = out.throughput_rps;
  out.thread_busy_frac["ProcessThread"] =
      x * (profile_.lock_prep_ns + profile_.clientio_ns * 0.3) / 1e9;
  out.thread_busy_frac["SyncThread"] = x * profile_.sync_ns / 1e9;
  out.thread_busy_frac["CommitProcessor"] =
      x * (profile_.lock_commit_ns + profile_.off_lock_commit_ns) / 1e9;
  for (int p = 0; p < peers; ++p) {
    out.thread_busy_frac["LearnerHandler-" + std::to_string(p)] =
        x * profile_.lock_ack_ns * 2.0 / 1e9;
    out.thread_busy_frac["Sender-" + std::to_string(p)] = x * 2'500 / 1e9;
  }

  out.packets_out_per_req = 1.0 + peers * 0.25;
  out.packets_in_per_req = 1.0 + peers * 0.25;
  out.instance_latency_ns = input.rtt_ns + lock_eff_ns;
  return out;
}

}  // namespace mcsmr::sim
