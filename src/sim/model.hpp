// Performance models for core-count sweeps (the figures this host's two
// cores cannot produce natively: Figs 1, 4, 5, 6, 7, 9, 12, 13 and the
// 24-core columns of Figs 8/14).
//
// The model is a *calibrated bottleneck analysis* — the paper's own §VI-B
// reasoning made executable. Throughput at K cores is the minimum of:
//
//   (1) the CPU-region scaling curve: X1 x speedup(K), where X1 (1-core
//       throughput) follows from the measured/condfigured per-request CPU
//       demands and speedup(K) is an explicit efficiency curve (defaults
//       reproduce the paper's measured near-linear region; the calibrator
//       can overwrite X1 from a real run on this host);
//   (2) per-thread serial bounds: no stage can exceed 1/demand on its
//       single thread (Batcher, Protocol, Replica) or k/demand for the
//       ClientIO pool — first principles, no fitting;
//   (3) the leader NIC packet budget: per-direction packets/s divided by
//       packets-per-request at the given batch size — first principles;
//   (4) the closed-loop client population.
//
// For the ZooKeeper-like baseline there is no empirical curve: the global
// lock's serial demand per request, inflated by a per-core cache-bouncing
// factor, produces the rise-then-collapse of Fig 1a analytically.
//
// Everything the paper plots is derivable from the solution: per-thread
// busy fractions (X x d_i), total CPU (X x D(K)), aggregate lock-blocked
// time, speedups, and the binding bottleneck's name.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcsmr::sim {

/// Per-request CPU demands (nanoseconds) of each stage of the mcsmr
/// architecture, plus protocol constants. Defaults are calibrated so the
/// 1-core throughput and stage ratios match the paper's parapluie cluster
/// (Fig 8a: ClientIO + Batcher ~ 80% of one core at 1 core).
struct SmrCostProfile {
  double clientio_ns = 24'000;        ///< read+deserialize+cache+serialize reply
  double batcher_ns = 6'500;          ///< batch formation, per request
  double protocol_batch_ns = 14'000;  ///< leader event-loop work per batch
  double protocol_msg_ns = 3'000;     ///< per peer message through the loop
  double replica_exec_ns = 6'000;     ///< ServiceManager per request
  double replicaio_snd_batch_ns = 6'000;  ///< serialize+enqueue one batch, per peer
  double replicaio_rcv_msg_ns = 4'000;    ///< read+decode one peer message

  /// 1-core context-switch/caching tax (CPU utilisation grows ~4x for a
  /// ~6x speedup on parapluie, Fig 5a => the 1-core run wastes ~1/3 of its
  /// cycles on sharing overhead; edel's profile uses a higher tax).
  double single_core_tax = 1.5;
};

/// Baseline (ZooKeeper-like) stage demands. No batching: all costs are per
/// request. `lock_*` portions are executed while holding the global lock.
struct ZkCostProfile {
  double clientio_ns = 26'000;
  double lock_prep_ns = 4'000;
  double sync_ns = 9'000;          ///< log append (off-lock)
  double lock_propose_ns = 4'500;
  double lock_ack_ns = 2'500;      ///< per follower ack, under the lock
  double lock_commit_ns = 4'500;   ///< CommitProcessor apply, under the lock
  double off_lock_commit_ns = 5'000;
  /// Lock service-time inflation per additional actively-contending core
  /// (cache-line bouncing / convoy). Produces the >4-core collapse.
  double lock_bounce_per_core = 0.05;
  double single_core_tax = 1.25;
};

/// Empirical CPU-region speedup curve (bound (1)). Points are linearly
/// interpolated; beyond the last point the final slope continues. The
/// default reproduces the paper's measured near-linear region.
struct ScalingCurve {
  std::vector<std::pair<double, double>> points = {
      {1, 1.0}, {2, 1.95}, {4, 3.85}, {6, 5.7}, {8, 7.0}, {12, 8.2}, {16, 9.0}, {24, 10.0}};
  double at(double cores) const;
};

struct ModelInput {
  int cores = 1;
  int n = 3;                  ///< replicas
  int clients = 1800;
  int clientio_threads = 4;
  std::uint32_t window = 10;  ///< WND
  double batch_bytes = 1300;  ///< BSZ
  double request_bytes = 128;
  double reply_bytes = 8;
  double nic_pps = 150'000;   ///< per-direction leader packet budget
  double rtt_ns = 60'000;     ///< idle network RTT
  /// NIC efficiency degradation per ClientIO thread beyond 8 (the Fig 9
  /// dip the paper attributes to kernel TCP-stack scalability).
  double nic_io_thread_penalty = 0.04;
};

struct ModelOutput {
  double throughput_rps = 0;
  double speedup = 1;
  double total_cpu_cores = 0;       ///< paper's "% of single core" / 100
  double total_blocked_cores = 0;   ///< aggregate lock-blocked time, in cores
  std::map<std::string, double> thread_busy_frac;  ///< per-thread utilisation
  std::string bottleneck;
  double packets_out_per_req = 0;
  double packets_in_per_req = 0;
  double instance_latency_ns = 0;   ///< leader propose->decide latency
};

/// Requests that fit in one batch of `batch_bytes` (encoded-size model).
double requests_per_batch(double batch_bytes, double request_bytes);

class SmrModel {
 public:
  SmrModel() = default;
  SmrModel(SmrCostProfile profile, ScalingCurve curve)
      : profile_(profile), curve_(curve) {}

  ModelOutput evaluate(const ModelInput& input) const;

  SmrCostProfile& profile() { return profile_; }

 private:
  SmrCostProfile profile_;
  ScalingCurve curve_;
};

class ZkModel {
 public:
  ZkModel() = default;
  explicit ZkModel(ZkCostProfile profile) : profile_(profile) {}

  ModelOutput evaluate(const ModelInput& input) const;

  ZkCostProfile& profile() { return profile_; }

 private:
  ZkCostProfile profile_;
};

}  // namespace mcsmr::sim
