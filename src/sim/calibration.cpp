#include "sim/calibration.hpp"

#include <thread>

#include "metrics/thread_stats.hpp"
#include "net/simnet.hpp"
#include "smr/replica.hpp"
#include "smr/swarm.hpp"

namespace mcsmr::sim {

CalibrationResult calibrate_smr(std::uint64_t duration_ns) {
  CalibrationResult result;

  metrics::ThreadRegistry::instance().clear();
  net::SimNetParams net_params;
  net_params.one_way_ns = 20'000;
  net_params.node_pps = 0;  // unlimited: we want pure CPU demands
  net_params.node_bandwidth_bps = 0;
  net::SimNetwork net(net_params);

  Config config;
  std::vector<net::NodeId> nodes;
  for (int id = 0; id < config.n; ++id) {
    nodes.push_back(net.add_node("replica-" + std::to_string(id)));
  }
  std::vector<std::unique_ptr<smr::Replica>> replicas;
  for (int id = 0; id < config.n; ++id) {
    replicas.push_back(smr::Replica::create_sim(config, static_cast<ReplicaId>(id), net,
                                                nodes, std::make_unique<smr::NullService>()));
  }
  for (auto& replica : replicas) replica->start();

  smr::ClientSwarm::Params swarm_params;
  swarm_params.workers = 2;
  swarm_params.clients_per_worker = 100;
  swarm_params.io_threads = config.client_io_threads;
  smr::ClientSwarm swarm(net, nodes, swarm_params);
  swarm.start();

  // Warm up, then measure.
  std::this_thread::sleep_for(std::chrono::nanoseconds(duration_ns / 4));
  metrics::ThreadRegistry::instance().reset_epoch();
  const std::uint64_t completed_before = swarm.completed();
  std::this_thread::sleep_for(std::chrono::nanoseconds(duration_ns));
  const std::uint64_t completed = swarm.completed() - completed_before;
  auto snaps = metrics::ThreadRegistry::instance().snapshot_all();
  const std::uint64_t leader_executed = replicas[0]->executed_requests();

  swarm.stop();
  for (auto& replica : replicas) replica->stop();

  if (completed == 0 || leader_executed == 0) return result;

  // Aggregate busy time per stage name across the leader's threads.
  // (All three replicas share the registry; follower stages see the same
  // per-message work, so per-request division still holds for the leader-
  // only stages Batcher/Protocol/Replica because only the leader's are
  // busy — follower Batchers idle at ~0.)
  auto busy_of = [&](const std::string& prefix) {
    double total = 0;
    for (const auto& snap : snaps) {
      if (snap.name.rfind(prefix, 0) == 0) total += static_cast<double>(snap.busy_ns);
    }
    return total;
  };

  const double per_request = static_cast<double>(completed);
  SmrCostProfile profile;
  // ClientIO work happens only at the leader (followers redirect).
  profile.clientio_ns = busy_of("ClientIO-") / per_request;
  profile.batcher_ns = busy_of("Batcher") / per_request;
  const double batch_size = requests_per_batch(1300, 128);
  profile.protocol_batch_ns =
      busy_of("Protocol") / per_request * batch_size / 3.0;  // leader + 2 followers
  profile.replica_exec_ns = busy_of("Replica") / per_request / 3.0;
  profile.replicaio_snd_batch_ns = busy_of("ReplicaIOSnd-") / per_request * batch_size / 6.0;
  profile.replicaio_rcv_msg_ns = busy_of("ReplicaIORcv-") / per_request * batch_size / 6.0;

  result.profile = profile;
  result.measured_throughput_rps = per_request / (static_cast<double>(duration_ns) * 1e-9);
  result.requests_completed = completed;
  result.ok = true;
  return result;
}

}  // namespace mcsmr::sim
